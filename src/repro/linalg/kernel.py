"""Stateful linear kernel for the Newton hot path.

The paper's performance argument is carried by the *inner* linear-solve
work of each Newton step (the Table 1 kernels; the Figure 8/9 CPU and
GPU comparisons). Two things about that hot path used to be wrong in
this library:

* the default solver path rebuilt the sparse preconditioner from
  scratch on every Newton step even though the Jacobian's sparsity
  pattern never changes inside a solve, and
* the :class:`LinearSolverStats` the inner kernels were designed to
  record were silently dropped on the default path, so the CPU/GPU
  cost models undercharged the digital baseline.

:class:`LinearKernel` fixes both. It owns the preconditioner and the
CSR symbolic structure it was built for, reuses the factorization
across Newton steps while the sparsity pattern is unchanged, refreshes
it only when the Krylov residual-reduction rate degrades past a
threshold, and *always* threads a stats sink — every Bi-CGstab, GMRES
and emergency-dense attempt is charged additively.

A kernel instance is itself a valid ``LinearSolver`` callable, so every
API that used to take a bare ``solver(jacobian, rhs)`` function accepts
a kernel unchanged; :func:`repro.nonlinear.newton.make_sparse_linear_solver`
is now a thin adapter over this class.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.linalg.dense import SingularMatrixError, solve_dense
from repro.linalg.iterative import IterativeResult, bicgstab, gmres
from repro.linalg.preconditioners import (
    Ilu0Preconditioner,
    JacobiPreconditioner,
    Preconditioner,
)
from repro.linalg.sparse import CsrMatrix

__all__ = ["LinearSolverStats", "LinearKernel"]

MatrixLike = Union[np.ndarray, CsrMatrix]


@dataclass
class LinearSolverStats:
    """Aggregate cost of the inner linear solves across Newton steps.

    ``record`` charges one solve; the fallback counters make the
    accounting *explicit*: when Bi-CGstab stalls and GMRES (or the
    emergency dense path) finishes the job, ``inner_iterations`` and
    ``matvecs`` hold the additive total over every attempt, and the
    corresponding fallback counter marks which path completed.
    """

    solves: int = 0
    inner_iterations: int = 0
    matvecs: int = 0
    preconditioner_builds: int = 0
    gmres_fallbacks: int = 0
    dense_fallbacks: int = 0

    def record(self, iterations: int, matvecs: int) -> None:
        self.solves += 1
        self.inner_iterations += iterations
        self.matvecs += matvecs

    def merge(self, other: "LinearSolverStats") -> None:
        """Fold another sink's counters into this one (additive)."""
        self.solves += other.solves
        self.inner_iterations += other.inner_iterations
        self.matvecs += other.matvecs
        self.preconditioner_builds += other.preconditioner_builds
        self.gmres_fallbacks += other.gmres_fallbacks
        self.dense_fallbacks += other.dense_fallbacks

    @property
    def mean_inner_per_solve(self) -> float:
        return self.inner_iterations / max(self.solves, 1)

    @property
    def preconditioner_reuse_fraction(self) -> float:
        """Fraction of solves that did *not* pay a factorization."""
        if self.solves == 0:
            return 0.0
        return 1.0 - min(self.preconditioner_builds, self.solves) / self.solves

    def as_row(self) -> dict:
        """Reporting row for the CLI / experiment summaries."""
        return {
            "linear solves": self.solves,
            "inner iterations": self.inner_iterations,
            "matvecs": self.matvecs,
            "preconditioner builds": self.preconditioner_builds,
            "reuse fraction": self.preconditioner_reuse_fraction,
            "GMRES fallbacks": self.gmres_fallbacks,
            "dense fallbacks": self.dense_fallbacks,
        }


def _pattern_key(matrix: CsrMatrix) -> Tuple:
    """Fingerprint of the CSR symbolic structure (shape + positions).

    Uses content digests rather than Python's builtin ``hash`` so the
    key is stable across interpreter restarts (``hash(bytes)`` is
    salted per process): a kernel state restored from a checkpoint in a
    fresh process must recognize the same sparsity pattern, or the
    cached factorization would be silently discarded and the resumed
    trajectory would diverge bitwise from the uninterrupted one.
    """
    return (
        matrix.shape,
        matrix.nnz,
        hashlib.sha1(matrix.indptr.tobytes()).digest(),
        hashlib.sha1(matrix.indices.tobytes()).digest(),
    )


class LinearKernel:
    """Reusable preconditioned Krylov kernel for ``J delta = F`` systems.

    Parameters
    ----------
    tol, max_iterations:
        Bi-CGstab stopping controls (relative residual 2-norm).
    preconditioner_kind:
        ``"jacobi"`` (default — vectorized, right for diagonally
        dominant Burgers Jacobians), ``"ilu0"`` (stronger, row-serial),
        or ``"none"``.
    stats:
        Lifetime stats sink; the kernel creates its own when omitted.
        Per-call sinks can be layered on top via ``solve(..., sink=)``.
    refresh_iteration_ratio, refresh_min_iterations:
        Reuse-quality gate. A reused preconditioner is kept while the
        Krylov solve stays within ``ratio`` times the iteration count
        measured right after the last factorization (with a floor of
        ``refresh_min_iterations`` so cheap solves never thrash);
        degrading past that — or outright non-convergence — triggers a
        refactorization from the current Jacobian values.
    gmres_fallback_iterations:
        Budget of the restarted-GMRES fallback used for systems too
        large for the emergency dense path.
    dense_fallback_max_rows:
        Largest system routed to the emergency dense solve when the
        Krylov attempts stall (near-singular Jacobians).

    Notes
    -----
    The kernel caches the preconditioner keyed on the CSR *symbolic*
    structure. Within one Newton solve (and across time steps of an
    implicit scheme on a fixed grid) the pattern is constant, so at
    most one factorization is paid until the reuse gate trips; a
    pattern change (new grid, new stencil) invalidates the cache
    immediately.
    """

    def __init__(
        self,
        tol: float = 1e-10,
        max_iterations: int = 2_000,
        preconditioner_kind: str = "jacobi",
        stats: Optional[LinearSolverStats] = None,
        refresh_iteration_ratio: float = 3.0,
        refresh_min_iterations: int = 8,
        gmres_fallback_iterations: int = 400,
        dense_fallback_max_rows: int = 4096,
    ):
        if preconditioner_kind not in ("jacobi", "ilu0", "none"):
            raise ValueError(f"unknown preconditioner_kind {preconditioner_kind!r}")
        if tol <= 0.0:
            raise ValueError("tol must be positive")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if refresh_iteration_ratio < 1.0:
            raise ValueError("refresh_iteration_ratio must be >= 1.0")
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.preconditioner_kind = preconditioner_kind
        self.stats = stats if stats is not None else LinearSolverStats()
        self.refresh_iteration_ratio = float(refresh_iteration_ratio)
        self.refresh_min_iterations = int(refresh_min_iterations)
        self.gmres_fallback_iterations = int(gmres_fallback_iterations)
        self.dense_fallback_max_rows = int(dense_fallback_max_rows)

        self._preconditioner: Optional[Preconditioner] = None
        self._pattern: Optional[Tuple] = None
        self._reference_iterations: Optional[int] = None
        # Lifetime counters independent of any external stats sink.
        self.factorizations = 0
        self.reuses = 0
        self.refreshes = 0

    # -- cache management -------------------------------------------------

    def reset(self) -> None:
        """Drop the cached preconditioner and symbolic structure."""
        self._preconditioner = None
        self._pattern = None
        self._reference_iterations = None

    # -- checkpointing ----------------------------------------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        """Everything a resumed run needs to continue *bitwise* where
        this kernel left off: the cached preconditioner (its
        factorization arrays), the symbolic pattern it was built for,
        the reuse-gate reference, and all accounting. Picklable; the
        trajectory snapshot embeds the pickled bytes.
        """
        return {
            "preconditioner": self._preconditioner,
            "pattern": self._pattern,
            "reference_iterations": self._reference_iterations,
            "factorizations": self.factorizations,
            "reuses": self.reuses,
            "refreshes": self.refreshes,
            "stats": {
                f.name: getattr(self.stats, f.name)
                for f in dataclass_fields(self.stats)
            },
        }

    def restore_checkpoint_state(self, state: Dict[str, Any]) -> None:
        """Install a :meth:`checkpoint_state` capture on this kernel.

        The lifetime ``stats`` object is updated *in place* (it may be
        a sink shared with a driver), never replaced.
        """
        self._preconditioner = state["preconditioner"]
        self._pattern = state["pattern"]
        self._reference_iterations = state["reference_iterations"]
        self.factorizations = int(state["factorizations"])
        self.reuses = int(state["reuses"])
        self.refreshes = int(state["refreshes"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)

    def _build_preconditioner(self, jacobian: CsrMatrix) -> Optional[Preconditioner]:
        try:
            if self.preconditioner_kind == "jacobi":
                return JacobiPreconditioner(jacobian)
            if self.preconditioner_kind == "ilu0":
                return Ilu0Preconditioner(jacobian)
        except ValueError:
            # Zero diagonal / zero pivot: run unpreconditioned rather
            # than refuse — the fallback chain still guards the solve.
            return None
        return None

    def _factorize(self, jacobian: CsrMatrix, pattern: Tuple) -> int:
        self._preconditioner = self._build_preconditioner(jacobian)
        self._pattern = pattern
        self._reference_iterations = None
        if self._preconditioner is None:
            return 0
        self.factorizations += 1
        return 1

    def _reuse_degraded(self, result: IterativeResult) -> bool:
        if not result.converged:
            return True
        if self._reference_iterations is None:
            return False
        allowance = max(
            self.refresh_min_iterations,
            int(np.ceil(self.refresh_iteration_ratio * self._reference_iterations)),
        )
        return result.iterations > allowance

    # -- solving ----------------------------------------------------------

    def solve(
        self,
        jacobian: MatrixLike,
        rhs: np.ndarray,
        sink: Optional[LinearSolverStats] = None,
    ) -> np.ndarray:
        """Solve ``jacobian @ delta = rhs``; charge every attempt.

        ``sink`` is an additional per-call stats sink (e.g. the one a
        ``NewtonResult`` will carry); the kernel's lifetime ``stats``
        is always charged as well.
        """
        if not isinstance(jacobian, CsrMatrix):
            delta = solve_dense(np.asarray(jacobian, dtype=float), rhs)
            self._charge(sink, iterations=0, matvecs=0, builds=0)
            return delta

        pattern = _pattern_key(jacobian)
        builds = 0
        if self._pattern != pattern or (
            self._preconditioner is None and self.preconditioner_kind != "none"
        ):
            builds += self._factorize(jacobian, pattern)
        else:
            self.reuses += 1

        inner = 0
        matvecs = 0
        result = bicgstab(
            jacobian,
            rhs,
            preconditioner=self._preconditioner,
            tol=self.tol,
            max_iterations=self.max_iterations,
        )
        inner += result.iterations
        matvecs += result.matvec_count

        if builds == 0 and self._reuse_degraded(result):
            # The cached factorization has gone stale (values drifted
            # too far from the ones it was built from): refresh from
            # the current Jacobian and retry, charging both attempts.
            self.refreshes += 1
            builds += self._factorize(jacobian, pattern)
            result = bicgstab(
                jacobian,
                rhs,
                preconditioner=self._preconditioner,
                tol=self.tol,
                max_iterations=self.max_iterations,
            )
            inner += result.iterations
            matvecs += result.matvec_count

        if result.converged and builds > 0:
            self._reference_iterations = result.iterations

        gmres_fallbacks = 0
        if not result.converged and jacobian.num_rows > self.dense_fallback_max_rows:
            # GMRES fallback for systems too large for the emergency
            # dense path; bounded budget — restart cycles carry
            # per-stage costs that would dominate wall-clock on
            # near-singular systems.
            gmres_fallbacks = 1
            result = gmres(
                jacobian,
                rhs,
                preconditioner=self._preconditioner,
                tol=self.tol,
                max_iterations=min(self.max_iterations, self.gmres_fallback_iterations),
            )
            inner += result.iterations
            matvecs += result.matvec_count

        if not result.converged and jacobian.num_rows <= self.dense_fallback_max_rows:
            # Emergency dense fallback for (near-)singular Jacobians.
            # Our own LU is used where its pure-Python cost is
            # tolerable; past that we lean on LAPACK so a pathological
            # instance cannot stall a whole experiment sweep.
            delta = self._dense_fallback(jacobian, rhs)
            self._charge(
                sink,
                iterations=inner,
                matvecs=matvecs,
                builds=builds,
                gmres_fallbacks=gmres_fallbacks,
                dense_fallbacks=1,
            )
            return delta

        self._charge(
            sink,
            iterations=inner,
            matvecs=matvecs,
            builds=builds,
            gmres_fallbacks=gmres_fallbacks,
        )
        return result.x

    # A kernel instance is a drop-in ``LinearSolver`` callable.
    def __call__(self, jacobian: MatrixLike, rhs: np.ndarray) -> np.ndarray:
        return self.solve(jacobian, rhs)

    @staticmethod
    def _dense_fallback(jacobian: CsrMatrix, rhs: np.ndarray) -> np.ndarray:
        dense = jacobian.to_dense()
        if jacobian.num_rows <= 128:
            try:
                return solve_dense(dense, rhs)
            except SingularMatrixError:
                return np.linalg.lstsq(dense, rhs, rcond=None)[0]
        try:
            return np.linalg.solve(dense, rhs)
        except np.linalg.LinAlgError:
            return np.linalg.lstsq(dense, rhs, rcond=None)[0]

    def _charge(
        self,
        sink: Optional[LinearSolverStats],
        iterations: int,
        matvecs: int,
        builds: int,
        gmres_fallbacks: int = 0,
        dense_fallbacks: int = 0,
    ) -> None:
        targets = [self.stats]
        if sink is not None and sink is not self.stats:
            targets.append(sink)
        for target in targets:
            target.record(iterations, matvecs)
            target.preconditioner_builds += builds
            target.gmres_fallbacks += gmres_fallbacks
            target.dense_fallbacks += dense_fallbacks
