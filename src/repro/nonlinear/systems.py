"""The ``NonlinearSystem`` protocol and the paper's example systems.

Solving nonlinear systems of equations means finding a vector ``u``
with ``F(u) = 0``; every solver in this library (digital Newton,
continuous Newton, homotopy, and the analog accelerator compiler)
consumes the same small interface: a residual, a Jacobian, and a
dimension. PDE discretizations produce these systems per time step
(:mod:`repro.pde`), and the tutorial systems of Sections 2-3 of the
paper are provided here as concrete classes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.linalg.sparse import CsrMatrix

__all__ = [
    "NonlinearSystem",
    "CallableSystem",
    "CubicRootSystem",
    "CoupledQuadraticSystem",
    "SimpleSquareSystem",
    "finite_difference_jacobian",
    "check_jacobian",
]

JacobianLike = Union[np.ndarray, CsrMatrix]


class NonlinearSystem:
    """Abstract nonlinear system ``F(u) = 0``.

    Subclasses implement :meth:`residual` and :meth:`jacobian`, and set
    :attr:`dimension`. Jacobians may be dense arrays or
    :class:`~repro.linalg.sparse.CsrMatrix`; solvers handle both.
    """

    dimension: int

    def residual(self, u: np.ndarray) -> np.ndarray:
        """Evaluate ``F(u)``; returns a vector of length ``dimension``."""
        raise NotImplementedError

    def jacobian(self, u: np.ndarray) -> JacobianLike:
        """Evaluate the Jacobian ``J_F(u)``."""
        raise NotImplementedError

    def residual_norm(self, u: np.ndarray) -> float:
        """Convenience: 2-norm of the residual at ``u``."""
        return float(np.linalg.norm(self.residual(u)))

    def _validate(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        if u.shape != (self.dimension,):
            raise ValueError(f"state must have shape ({self.dimension},), got {u.shape}")
        return u


class CallableSystem(NonlinearSystem):
    """Wrap plain callables as a :class:`NonlinearSystem`.

    If no Jacobian callable is given, a central finite-difference
    Jacobian is used — adequate for tests and small examples, not for
    production PDE stencils (those carry analytic Jacobians).
    """

    def __init__(
        self,
        dimension: int,
        residual: Callable[[np.ndarray], np.ndarray],
        jacobian: Optional[Callable[[np.ndarray], JacobianLike]] = None,
    ):
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self._residual = residual
        self._jacobian = jacobian

    def residual(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        out = np.asarray(self._residual(u), dtype=float)
        if out.shape != (self.dimension,):
            raise ValueError(f"residual must return shape ({self.dimension},), got {out.shape}")
        return out

    def jacobian(self, u: np.ndarray) -> JacobianLike:
        u = self._validate(u)
        if self._jacobian is not None:
            return self._jacobian(u)
        return finite_difference_jacobian(self.residual, u)


class CubicRootSystem(NonlinearSystem):
    """Equation 1 of the paper, ``f(u) = u^3 - 1 = 0``, over the complex
    plane expressed as a two-real-variable system.

    With ``u = x + i y``, the real and imaginary parts of ``u^3 - 1``
    give the residual; the Jacobian is the Cauchy-Riemann structured
    2x2 matrix. The three roots are the cube roots of unity. This is
    the system behind the Figure 2 basin map.
    """

    dimension = 2

    def residual(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        z = complex(u[0], u[1])
        f = z**3 - 1.0
        return np.array([f.real, f.imag])

    def jacobian(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        z = complex(u[0], u[1])
        df = 3.0 * z**2
        # d(Re f)/dx = Re f', d(Re f)/dy = -Im f' (Cauchy-Riemann).
        return np.array([[df.real, -df.imag], [df.imag, df.real]])

    @staticmethod
    def roots() -> np.ndarray:
        """The three cube roots of unity as (x, y) rows."""
        angles = 2.0 * np.pi * np.arange(3) / 3.0
        return np.column_stack([np.cos(angles), np.sin(angles)])


class CoupledQuadraticSystem(NonlinearSystem):
    """Equation 2 of the paper: the 'hard' coupled quadratic system.

    ``rho0^2 + rho0 + rho1 = RHS0``
    ``rho1^2 + rho1 - rho0 = RHS1``

    The paper motivates it as a one-dimensional semilinear PDE
    (a reaction term squaring the unknown) discretized on two grid
    points. Depending on the right-hand-side constants it has 0, 1, 2,
    or 4 real roots.
    """

    dimension = 2

    def __init__(self, rhs0: float = 1.0, rhs1: float = 1.0):
        self.rhs0 = float(rhs0)
        self.rhs1 = float(rhs1)

    def residual(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        rho0, rho1 = u
        return np.array(
            [
                rho0**2 + rho0 + rho1 - self.rhs0,
                rho1**2 + rho1 - rho0 - self.rhs1,
            ]
        )

    def jacobian(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        rho0, rho1 = u
        return np.array([[2.0 * rho0 + 1.0, 1.0], [-1.0, 2.0 * rho1 + 1.0]])

    def real_roots(self, tol: float = 1e-10) -> np.ndarray:
        """All real roots, found by eliminating rho1 and solving the
        resulting quartic in rho0 with numpy's polynomial roots.

        From the first equation, ``rho1 = RHS0 - rho0^2 - rho0``;
        substituting into the second gives a quartic in ``rho0``.
        """
        a, b = self.rhs0, self.rhs1
        # rho1 = a - rho0^2 - rho0 =: p(rho0)
        # p^2 + p - rho0 - b = 0
        # (a - r^2 - r)^2 + (a - r^2 - r) - r - b = 0
        # Expand (a - r^2 - r)^2 = r^4 + 2 r^3 + (1 - 2a) r^2 - 2a r + a^2.
        coeffs = [
            1.0,  # r^4
            2.0,  # r^3
            1.0 - 2.0 * a - 1.0,  # r^2: (1 - 2a) from square, -1 from p
            -2.0 * a - 1.0 - 1.0,  # r: -2a from square, -1 from p, -1 from -r
            a**2 + a - b,  # const
        ]
        roots = np.roots(coeffs)
        out: List[np.ndarray] = []
        for r in roots:
            if abs(r.imag) < tol:
                rho0 = float(r.real)
                rho1 = a - rho0**2 - rho0
                candidate = np.array([rho0, rho1])
                if self.residual_norm(candidate) < 1e-6:
                    out.append(candidate)
        return np.array(out) if out else np.zeros((0, 2))


class SimpleSquareSystem(NonlinearSystem):
    """Equation 3 of the paper: the 'simple' homotopy start system.

    ``rho_i^2 - 1 = 0`` for each component, with the obvious
    ``2^dimension`` roots at all sign combinations of one.
    """

    def __init__(self, dimension: int = 2):
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = dimension

    def residual(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        return u**2 - 1.0

    def jacobian(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        return np.diag(2.0 * u)

    def roots(self) -> np.ndarray:
        """All ``2^d`` sign-combination roots as rows."""
        d = self.dimension
        count = 2**d
        out = np.ones((count, d))
        for idx in range(count):
            for bit in range(d):
                if (idx >> bit) & 1:
                    out[idx, bit] = -1.0
        return out


def finite_difference_jacobian(
    residual: Callable[[np.ndarray], np.ndarray],
    u: np.ndarray,
    step: float = 1e-7,
) -> np.ndarray:
    """Central finite-difference Jacobian of ``residual`` at ``u``."""
    u = np.asarray(u, dtype=float)
    n = u.shape[0]
    f0 = np.asarray(residual(u), dtype=float)
    jac = np.zeros((f0.shape[0], n))
    for j in range(n):
        up = u.copy()
        um = u.copy()
        h = step * max(1.0, abs(u[j]))
        up[j] += h
        um[j] -= h
        jac[:, j] = (np.asarray(residual(up)) - np.asarray(residual(um))) / (2.0 * h)
    return jac


def check_jacobian(
    system: NonlinearSystem,
    u: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-6,
) -> float:
    """Compare the analytic Jacobian with finite differences at ``u``.

    Returns the max absolute deviation; raises AssertionError when the
    deviation exceeds the tolerances. Used by tests of every stencil.
    """
    analytic = system.jacobian(u)
    if isinstance(analytic, CsrMatrix):
        analytic = analytic.to_dense()
    numeric = finite_difference_jacobian(system.residual, np.asarray(u, dtype=float))
    deviation = float(np.max(np.abs(analytic - numeric)))
    scale = float(np.max(np.abs(numeric))) if numeric.size else 0.0
    if deviation > atol + rtol * scale:
        raise AssertionError(
            f"Jacobian mismatch: max deviation {deviation:.3e} vs scale {scale:.3e}"
        )
    return deviation
