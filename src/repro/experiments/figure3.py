"""Figure 3: the coupled quadratic system with and without homotopy.

Three panels (after the visualization panel):

* continuous Newton *without* homotopy — colors indicate the roots of
  Equation 2 found per initial condition; a region of wrong results
  exists (the paper's pink region);
* the homotopy *start* — every initial condition settles on one of the
  four roots (+-1, +-1) of the simple system of Equation 3;
* the homotopy *end* — every initial condition is guided to a correct
  root of Equation 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.nonlinear.basins import BasinMap, coupled_system_basins
from repro.nonlinear.systems import CoupledQuadraticSystem
from repro.reporting import ascii_table

__all__ = ["Figure3Result", "run_figure3"]


@dataclass
class Figure3Result:
    system: CoupledQuadraticSystem
    maps: Dict[str, BasinMap]

    def rows(self) -> List[dict]:
        return [
            {
                "panel": name,
                "distinct outcomes": int(len({int(v) for v in np.unique(m.labels)})),
                "correct-solution fraction": m.converged_fraction,
                "wrong-result fraction": 1.0 - m.converged_fraction,
            }
            for name, m in self.maps.items()
        ]

    def render(self) -> str:
        roots = self.system.real_roots()
        header = f"Equation 2 with RHS = ({self.system.rhs0}, {self.system.rhs1}); real roots:\n"
        header += "\n".join(f"  ({r[0]:+.4f}, {r[1]:+.4f})" for r in roots)
        return header + "\n\n" + ascii_table(self.rows())


def run_figure3(
    rhs0: float = 1.0, rhs1: float = 1.0, resolution: int = 64
) -> Figure3Result:
    system = CoupledQuadraticSystem(rhs0=rhs0, rhs1=rhs1)
    maps = {
        "continuous Newton, no homotopy": coupled_system_basins(
            system, resolution=resolution, method="newton_flow"
        ),
        "homotopy beginning (Equation 3 roots)": coupled_system_basins(
            system, resolution=resolution, method="homotopy_start"
        ),
        "homotopy end": coupled_system_basins(system, resolution=resolution, method="homotopy"),
    }
    return Figure3Result(system=system, maps=maps)
