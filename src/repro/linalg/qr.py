"""Sparse-aware QR: the stand-in for the paper's cuSolver GPU kernel.

Section 6.3 of the paper offloads each Newton step's linear solve to
``cusolverSp`` sparse QR on a GTX 1070. We reproduce the *algorithmic*
content (a QR least-squares solve of ``J delta = F``) and report the
operation counts that the :class:`repro.perf.gpu_model.GpuModel` turns
into modeled seconds and joules.

The factorization here is Householder QR on a dense copy — correct for
any matrix and exact about the answer — while :func:`qr_operation_count`
reports the cost a *sparse* QR would pay, derived from the matrix's
bandwidth-bounded fill, which is what the GPU model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.dense import QrFactorization, qr_factor, qr_solve
from repro.linalg.sparse import CsrMatrix

__all__ = ["SparseQr", "qr_operation_count"]


def qr_operation_count(matrix: CsrMatrix) -> float:
    """Floating-point operation estimate for sparse QR of ``matrix``.

    Sparse QR of a banded matrix with bandwidth ``w`` costs about
    ``2 n w^2`` flops (each of the ``n`` Householder steps touches an
    ``O(w) x O(w)`` window). For five-point-stencil Jacobians the
    bandwidth is the grid width times the number of coupled fields,
    which reproduces the superlinear growth in GPU solve time between
    16x16 and 32x32 problems seen in Figure 9.
    """
    n = matrix.num_rows
    if n == 0:
        return 0.0
    row_ids = np.repeat(np.arange(n), np.diff(matrix.indptr))
    if matrix.nnz == 0:
        return float(n)
    bandwidth = int(np.max(np.abs(row_ids - matrix.indices))) + 1
    return float(2.0 * n * bandwidth * bandwidth)


@dataclass
class SparseQr:
    """QR solver wrapper recording the modeled sparse flop count."""

    factorization: QrFactorization
    modeled_flops: float
    nnz: int
    n: int

    @classmethod
    def factor(cls, matrix: CsrMatrix) -> "SparseQr":
        if matrix.num_rows != matrix.num_cols:
            raise ValueError("SparseQr.factor expects a square system matrix")
        dense = matrix.to_dense()
        return cls(
            factorization=qr_factor(dense),
            modeled_flops=qr_operation_count(matrix),
            nnz=matrix.nnz,
            n=matrix.num_rows,
        )

    def solve(self, b: np.ndarray) -> np.ndarray:
        return qr_solve(self.factorization, b)
