"""Homotopy continuation (Section 3.2 of the paper).

To solve a hard system ``H(rho) = 0`` without knowing good initial
conditions, connect it to a simple system ``S(rho) = 0`` with obvious
roots through the convex homotopy

    G(rho, lambda) = (1 - lambda) S(rho) + lambda H(rho) = 0,

and track each simple root from ``lambda = 0`` to ``lambda = 1``. The
paper emphasizes that this tracking is "again an ODE in disguise" (the
Davidenko equation), which is why an analog accelerator executes it
naturally; digitally, we sweep lambda in small increments with a Newton
corrector at each value — the classical predictor-corrector scheme —
and also expose the pure-ODE path for the analog engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nonlinear.newton import (
    IterationHook,
    NewtonOptions,
    damped_newton_with_restarts,
    newton_solve,
)
from repro.nonlinear.systems import NonlinearSystem
from repro.trace.tracer import TracerLike, as_tracer

__all__ = [
    "BlendedSystem",
    "HomotopySchedule",
    "HomotopyResult",
    "NewtonHomotopySystem",
    "homotopy_solve",
    "newton_homotopy_solve",
    "homotopy_all_roots",
    "DavidenkoResult",
    "davidenko_solve",
]


class BlendedSystem(NonlinearSystem):
    """The joint system ``(1 - lambda) S + lambda H`` at fixed lambda."""

    def __init__(self, simple: NonlinearSystem, hard: NonlinearSystem, lam: float):
        if simple.dimension != hard.dimension:
            raise ValueError(
                f"dimension mismatch: simple {simple.dimension} vs hard {hard.dimension}"
            )
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        self.simple = simple
        self.hard = hard
        self.lam = float(lam)
        self.dimension = simple.dimension

    def residual(self, u: np.ndarray) -> np.ndarray:
        return (1.0 - self.lam) * self.simple.residual(u) + self.lam * self.hard.residual(u)

    def jacobian(self, u: np.ndarray) -> np.ndarray:
        js = self.simple.jacobian(u)
        jh = self.hard.jacobian(u)
        js = js if isinstance(js, np.ndarray) else js.to_dense()
        jh = jh if isinstance(jh, np.ndarray) else jh.to_dense()
        return (1.0 - self.lam) * js + self.lam * jh


@dataclass
class HomotopySchedule:
    """Controls the lambda sweep.

    Attributes
    ----------
    steps:
        Number of lambda increments from 0 to 1.
    corrector:
        Newton options used at each lambda value. Loose tolerances are
        fine mid-path; the final lambda = 1 solve is refined with
        ``final_corrector``.
    final_corrector:
        Newton options for the terminal polish at lambda = 1.
    """

    steps: int = 50
    corrector: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(tolerance=1e-8, max_iterations=30)
    )
    final_corrector: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(tolerance=1e-12, max_iterations=60)
    )

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ValueError("steps must be positive")


@dataclass
class HomotopyResult:
    """One tracked homotopy path."""

    u: np.ndarray
    converged: bool
    start_root: np.ndarray
    path: List[np.ndarray] = field(default_factory=list)
    lambdas: List[float] = field(default_factory=list)
    corrector_iterations: int = 0
    failure_lambda: Optional[float] = None
    jumps: int = 0
    """Number of fold points where the tracked root annihilated and the
    path jumped to a surviving root's basin (the behaviour of the
    physical continuous dynamics at a turning point)."""


class NewtonHomotopySystem(NonlinearSystem):
    """The classical global (Newton) homotopy's simple companion.

    ``S(u) = F(u) - F(u0)`` has ``u0`` as an exact root by
    construction, so any state at all can anchor a homotopy path:
    blending with ``H = F`` via :class:`BlendedSystem` yields
    ``G(u, lambda) = F(u) - (1 - lambda) F(u0)``, the textbook global
    homotopy. This is the degradation ladder's last solver rung
    (:mod:`repro.runtime.ladder`): when neither the analog-seeded
    polish nor damped restarts converge, the path from the naive guess
    is swept instead — the paper's Section 3.2 fallback, made
    systematic.
    """

    def __init__(self, system: NonlinearSystem, u0: np.ndarray):
        self.system = system
        self.dimension = system.dimension
        self._f0 = np.asarray(system.residual(np.asarray(u0, dtype=float)), dtype=float)

    def residual(self, u: np.ndarray) -> np.ndarray:
        return self.system.residual(u) - self._f0

    def jacobian(self, u: np.ndarray):
        return self.system.jacobian(u)


def newton_homotopy_solve(
    system: NonlinearSystem,
    u0: np.ndarray,
    schedule: Optional[HomotopySchedule] = None,
    tracer: Optional[TracerLike] = None,
    iteration_hook: Optional[IterationHook] = None,
) -> HomotopyResult:
    """Solve ``F(u) = 0`` by global homotopy from an arbitrary state.

    Builds the :class:`NewtonHomotopySystem` companion at ``u0`` and
    tracks its (exact) root to a root of ``system``. No knowledge of
    the problem's structure is needed — which is exactly what a last
    fallback rung requires.
    """
    simple = NewtonHomotopySystem(system, u0)
    return homotopy_solve(
        simple,
        system,
        np.asarray(u0, dtype=float),
        schedule=schedule,
        tracer=tracer,
        iteration_hook=iteration_hook,
    )


def _fold_recovery(
    blended: BlendedSystem,
    u: np.ndarray,
    options: NewtonOptions,
    tracer: Optional[TracerLike] = None,
    iteration_hook: Optional[IterationHook] = None,
):
    """Find a surviving root of the blended system after a fold.

    When the tracked real root annihilates (a turning point of the real
    path), the physical accelerator's state is no longer at equilibrium
    and its continuous dynamics carry it to whichever attractor of the
    blended system it reaches — empirically, Figure 3 shows every
    initial condition ends on a correct solution. We emulate that
    global behaviour by restarting damped Newton from a deterministic
    coarse lattice of starting points, visited nearest-to-``u`` first,
    and accepting the first root found. The caller counts these events
    in ``HomotopyResult.jumps``.
    """
    recovery_options = NewtonOptions(
        tolerance=options.tolerance,
        max_iterations=max(options.max_iterations, 200),
        divergence_threshold=options.divergence_threshold,
    )
    if blended.dimension <= 4:
        axis = np.linspace(-3.0, 3.0, 7)
        lattice = np.array(
            np.meshgrid(*([axis] * blended.dimension), indexing="ij")
        ).reshape(blended.dimension, -1).T
    else:
        # High-dimensional systems: a full lattice is intractable; use
        # deterministic random perturbations of growing radius instead.
        rng = np.random.default_rng(12345)
        lattice = u + np.concatenate(
            [radius * rng.standard_normal((8, u.shape[0])) for radius in (0.25, 0.5, 1.0, 2.0)]
        )
    order = np.argsort(np.linalg.norm(lattice - u, axis=1))
    last = None
    for idx in order:
        result = damped_newton_with_restarts(
            blended,
            lattice[idx],
            recovery_options,
            min_damping=1.0 / 64.0,
            tracer=tracer,
            iteration_hook=iteration_hook,
        )
        last = result
        if result.converged:
            return result
    return last


def homotopy_solve(
    simple: NonlinearSystem,
    hard: NonlinearSystem,
    start_root: np.ndarray,
    schedule: Optional[HomotopySchedule] = None,
    tracer: Optional[TracerLike] = None,
    iteration_hook: Optional[IterationHook] = None,
) -> HomotopyResult:
    """Track one root of the simple system to a root of the hard one.

    The sweep uses secant prediction (extrapolating the last two path
    points) followed by a Newton corrector on the blended system. A
    path that loses its corrector (turning point, path divergence) is
    reported with the lambda at which tracking failed. ``tracer``
    records one ``homotopy_stage`` span per lambda increment wrapping
    that stage's corrector iterations.
    """
    schedule = schedule or HomotopySchedule()
    tracer = as_tracer(tracer)
    u = np.array(start_root, dtype=float, copy=True)
    path = [u.copy()]
    lambdas = [0.0]
    total_corrector = 0
    jumps = 0

    previous = None
    lam_values = np.linspace(0.0, 1.0, schedule.steps + 1)[1:]
    for lam in lam_values:
        with tracer.span("homotopy_stage", lam=float(lam)) as stage:
            # Secant predictor.
            if previous is not None:
                prediction = u + (u - previous)
            else:
                prediction = u.copy()
            blended = BlendedSystem(simple, hard, float(lam))
            options = schedule.final_corrector if lam == lam_values[-1] else schedule.corrector
            result = newton_solve(
                blended, prediction, options, tracer=tracer, iteration_hook=iteration_hook
            )
            if not result.converged:
                # Retry without the predictor before resorting to a jump.
                result = newton_solve(
                    blended, u, options, tracer=tracer, iteration_hook=iteration_hook
                )
            if not result.converged:
                # Fold point: the tracked real root annihilated. The
                # continuous dynamics of the physical accelerator do not
                # stop here — noise kicks the state off the fold and the
                # Newton flow slides into the basin of a surviving root of
                # the blended system. We emulate that with damped Newton
                # restarts from deterministic perturbations of growing
                # radius around the fold point.
                result = _fold_recovery(
                    blended, u, options, tracer=tracer, iteration_hook=iteration_hook
                )
                if result.converged:
                    jumps += 1
                    tracer.counter("homotopy_jumps")
            total_corrector += result.iterations
            stage.update(converged=result.converged, iterations=result.iterations)
            if not result.converged:
                return HomotopyResult(
                    u=u,
                    converged=False,
                    start_root=np.asarray(start_root, dtype=float),
                    path=path,
                    lambdas=lambdas,
                    corrector_iterations=total_corrector,
                    failure_lambda=float(lam),
                    jumps=jumps,
                )
            previous = u
            u = result.u
            path.append(u.copy())
            lambdas.append(float(lam))
    return HomotopyResult(
        u=u,
        converged=True,
        start_root=np.asarray(start_root, dtype=float),
        path=path,
        lambdas=lambdas,
        corrector_iterations=total_corrector,
        jumps=jumps,
    )


@dataclass
class DavidenkoResult:
    """One homotopy path tracked as a continuous ODE."""

    u: np.ndarray
    converged: bool
    start_root: np.ndarray
    residual_norm: float
    rhs_evaluations: int


def davidenko_solve(
    simple: NonlinearSystem,
    hard: NonlinearSystem,
    start_root: np.ndarray,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    corrector_gain: float = 20.0,
    residual_tolerance: float = 1e-6,
    polish: bool = True,
    max_steps: int = 20_000,
) -> DavidenkoResult:
    """Track a homotopy path by integrating the Davidenko ODE.

    The paper stresses that "homotopy continuation is again an ODE in
    disguise" (Section 3.2) — the form the analog accelerator executes
    directly. Differentiating ``G(rho(lambda), lambda) = 0`` gives

        d rho / d lambda = -J_G^{-1} (H(rho) - S(rho))

    We integrate it from ``lambda = 0`` to ``1`` with a stabilizing
    Newton-flow corrector term ``-gain * J_G^{-1} G`` added (Uri
    Ascher's stabilized continuation; physically this is the continuous
    Newton feedback loop running concurrently with the lambda ramp,
    exactly the circuit of Figure 1 with a swept DAC input). An
    optional terminal digital polish brings the endpoint to full
    precision — the hybrid pattern again.
    """
    from repro.linalg.dense import SingularMatrixError, solve_dense
    from repro.ode.dormand_prince import integrate_rk45

    u0 = np.asarray(start_root, dtype=float)
    if u0.shape != (simple.dimension,):
        raise ValueError(f"start_root must have shape ({simple.dimension},)")
    if corrector_gain < 0.0:
        raise ValueError("corrector_gain must be nonnegative")
    evaluations = 0

    def rhs(lam: float, u: np.ndarray) -> np.ndarray:
        nonlocal evaluations
        evaluations += 1
        lam = min(max(lam, 0.0), 1.0)
        blended = BlendedSystem(simple, hard, lam)
        jac = blended.jacobian(u)
        drive = hard.residual(u) - simple.residual(u)
        correction = blended.residual(u)
        try:
            step = solve_dense(jac, drive + corrector_gain * correction)
        except SingularMatrixError:
            # Fold: regularized least-squares direction, as the
            # saturating physical circuit would produce.
            gram = jac.T @ jac + 1e-8 * np.eye(jac.shape[1])
            step = solve_dense(gram, jac.T @ (drive + corrector_gain * correction))
        return -step

    solution = integrate_rk45(rhs, 0.0, u0, 1.0, rtol=rtol, atol=atol, max_steps=max_steps)
    u = solution.final_state
    if polish:
        result = newton_solve(hard, u, NewtonOptions(tolerance=1e-12, max_iterations=50))
        if result.converged:
            u = result.u
    norm = hard.residual_norm(u)
    return DavidenkoResult(
        u=u,
        converged=norm <= residual_tolerance,
        start_root=u0,
        residual_norm=norm,
        rhs_evaluations=evaluations,
    )


def homotopy_all_roots(
    simple: NonlinearSystem,
    hard: NonlinearSystem,
    start_roots: np.ndarray,
    schedule: Optional[HomotopySchedule] = None,
    dedup_tolerance: float = 1e-6,
) -> np.ndarray:
    """Track every simple root and return the distinct hard roots found.

    This is the paper's root-exploration workflow: "By exploring the
    roots of the simple system we explore the roots of the difficult
    problem." Paths that fail to track are skipped; duplicates (two
    paths landing on the same hard root, as in Figure 3 where four
    starts map onto two roots) are merged.
    """
    found: List[np.ndarray] = []
    for start in np.atleast_2d(np.asarray(start_roots, dtype=float)):
        result = homotopy_solve(simple, hard, start, schedule)
        if not result.converged:
            continue
        if all(np.linalg.norm(result.u - existing) > dedup_tolerance for existing in found):
            found.append(result.u)
    return np.array(found) if found else np.zeros((0, simple.dimension))
