"""Dirichlet boundary handling via ghost rings."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pde.grid import Grid2D

__all__ = ["DirichletBoundary"]


@dataclass
class DirichletBoundary:
    """Fixed boundary values on the four sides of a :class:`Grid2D`.

    ``west``/``east`` have length ``ny`` (one value per row);
    ``south``/``north`` have length ``nx`` (one value per column).
    Corner ghost nodes are never referenced by the five-point stencils
    used in this library, so they need no values.
    """

    west: np.ndarray
    east: np.ndarray
    south: np.ndarray
    north: np.ndarray

    @classmethod
    def constant(cls, grid: Grid2D, value: float = 0.0) -> "DirichletBoundary":
        return cls(
            west=np.full(grid.ny, float(value)),
            east=np.full(grid.ny, float(value)),
            south=np.full(grid.nx, float(value)),
            north=np.full(grid.nx, float(value)),
        )

    @classmethod
    def random(
        cls, grid: Grid2D, rng: np.random.Generator, low: float = -1.0, high: float = 1.0
    ) -> "DirichletBoundary":
        """Uniformly random boundary values, as in the paper's randomly
        generated problem instances (Sections 5.4, 6.1)."""
        return cls(
            west=rng.uniform(low, high, grid.ny),
            east=rng.uniform(low, high, grid.ny),
            south=rng.uniform(low, high, grid.nx),
            north=rng.uniform(low, high, grid.nx),
        )

    def validate(self, grid: Grid2D) -> None:
        if self.west.shape != (grid.ny,) or self.east.shape != (grid.ny,):
            raise ValueError("west/east boundary arrays must have length ny")
        if self.south.shape != (grid.nx,) or self.north.shape != (grid.nx,):
            raise ValueError("south/north boundary arrays must have length nx")

    def scaled(self, factor: float) -> "DirichletBoundary":
        """Boundary scaled by ``factor`` (dynamic-range mapping)."""
        return DirichletBoundary(
            west=self.west * factor,
            east=self.east * factor,
            south=self.south * factor,
            north=self.north * factor,
        )
