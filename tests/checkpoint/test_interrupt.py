"""Graceful interruption of the batch runtime (SIGTERM/Ctrl-C path).

These run in-process with a pre-latched :class:`GracefulShutdown` —
the signal plumbing itself is exercised by the subprocess suite in
``test_kill_resume.py``; here we pin the runtime's behavior once the
shutdown flag is up: stop admitting work, keep every already-committed
outcome, render an INTERRUPTED batch, mark the trace manifest, and
leave a journal a later ``--resume`` can pick up.
"""

import pytest

from repro.checkpoint import BatchJournal, GracefulShutdown, read_journal
from repro.runtime import ProblemSpec, RetryPolicy, Runtime, SolveRequest
from repro.trace.tracer import Tracer


def _requests(count=4):
    return [
        SolveRequest(
            f"req-{i:04d}",
            ProblemSpec.quadratic(rhs0=1.0 + 0.1 * i),
            analog_time_limit=1e-3,
        )
        for i in range(count)
    ]


def _runtime(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("retry", RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.002))
    return Runtime(**kwargs)


class TestRuntimeInterrupt:
    def test_pre_latched_shutdown_yields_interrupted_batch(self):
        shutdown = GracefulShutdown()
        shutdown.request()
        result = _runtime().run_batch(_requests(), shutdown=shutdown)
        assert result.interrupted
        assert len(result.outcomes) == 0  # nothing reached a terminal state
        assert "[INTERRUPTED: 0/4 requests terminal]" in result.render()

    def test_interrupted_run_marks_trace_manifest(self):
        shutdown = GracefulShutdown()
        shutdown.request()
        tracer = Tracer()
        _runtime().run_batch(_requests(), tracer=tracer, shutdown=shutdown)
        assert tracer.manifest["runtime"]["status"] == "interrupted"
        tracer.check_closed()  # every span closed despite the interrupt

    def test_completed_run_marks_trace_manifest_completed(self):
        tracer = Tracer()
        result = _runtime().run_batch(_requests(2), tracer=tracer)
        assert not result.interrupted
        assert tracer.manifest["runtime"]["status"] == "completed"

    def test_interrupted_journal_is_resumable(self, tmp_path):
        path = tmp_path / "b.journal"
        reference = _runtime(journal=BatchJournal(path)).run_batch(_requests())
        ref_journal = read_journal(path)
        assert ref_journal.completed

        # Interrupted run against a fresh journal: the interruption is
        # recorded, and a resume finishes the remaining requests with
        # outcomes identical to the uninterrupted reference.
        path2 = tmp_path / "interrupted.journal"
        shutdown = GracefulShutdown()
        shutdown.request()
        runtime = _runtime(journal=BatchJournal(path2))
        partial = runtime.run_batch(_requests(), shutdown=shutdown)
        runtime.journal.close()
        assert partial.interrupted

        replay = read_journal(path2)
        assert replay.interrupted
        assert not replay.completed
        runtime2 = replay.build_runtime(journal=BatchJournal.resume(replay))
        resumed = runtime2.run_batch(replay.requests, resume=replay)
        runtime2.journal.close()
        assert not resumed.interrupted
        assert [o.residual_norm for o in resumed.outcomes] == [
            o.residual_norm for o in reference.outcomes
        ]
        assert read_journal(path2).completed
