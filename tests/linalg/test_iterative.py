"""Tests for the Krylov and relaxation solvers."""

import numpy as np
import pytest

from repro.linalg.iterative import (
    bicgstab,
    conjugate_gradient,
    gauss_seidel,
    gmres,
    jacobi,
    sor,
)
from repro.linalg.preconditioners import Ilu0Preconditioner, JacobiPreconditioner
from repro.linalg.sparse import CooBuilder


def laplacian_2d(n):
    """SPD 5-point Laplacian on an n x n interior grid."""
    size = n * n
    builder = CooBuilder(size, size)
    for j in range(n):
        for i in range(n):
            k = j * n + i
            builder.add(k, k, 4.0)
            if i > 0:
                builder.add(k, k - 1, -1.0)
            if i < n - 1:
                builder.add(k, k + 1, -1.0)
            if j > 0:
                builder.add(k, k - n, -1.0)
            if j < n - 1:
                builder.add(k, k + n, -1.0)
    return builder.to_csr()


def advection_diffusion(n, peclet=0.8):
    """Nonsymmetric stencil matrix (upwind-ish advection + diffusion)."""
    size = n * n
    builder = CooBuilder(size, size)
    for j in range(n):
        for i in range(n):
            k = j * n + i
            builder.add(k, k, 4.0)
            if i > 0:
                builder.add(k, k - 1, -1.0 - peclet)
            if i < n - 1:
                builder.add(k, k + 1, -1.0 + peclet)
            if j > 0:
                builder.add(k, k - n, -1.0)
            if j < n - 1:
                builder.add(k, k + n, -1.0)
    return builder.to_csr()


SOLVERS_SPD = [jacobi, gauss_seidel, sor, conjugate_gradient, bicgstab, gmres]


@pytest.mark.parametrize("solver", SOLVERS_SPD, ids=lambda f: f.__name__)
def test_solves_spd_system(solver):
    mat = laplacian_2d(6)
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(mat.num_rows)
    result = solver(mat, mat.matvec(x_true), tol=1e-11)
    assert result.converged
    np.testing.assert_allclose(result.x, x_true, rtol=1e-6, atol=1e-7)


@pytest.mark.parametrize("solver", [bicgstab, gmres], ids=lambda f: f.__name__)
def test_nonsymmetric_system(solver):
    mat = advection_diffusion(6)
    rng = np.random.default_rng(1)
    x_true = rng.standard_normal(mat.num_rows)
    result = solver(mat, mat.matvec(x_true), tol=1e-11)
    assert result.converged
    np.testing.assert_allclose(result.x, x_true, rtol=1e-6, atol=1e-7)


def test_dense_input_accepted():
    a = np.array([[3.0, 1.0], [1.0, 2.0]])
    result = conjugate_gradient(a, np.array([5.0, 5.0]))
    assert result.converged
    np.testing.assert_allclose(a @ result.x, [5.0, 5.0], atol=1e-8)


def test_zero_rhs_converges_immediately():
    mat = laplacian_2d(3)
    result = conjugate_gradient(mat, np.zeros(mat.num_rows))
    assert result.converged
    assert result.iterations == 0
    np.testing.assert_allclose(result.x, 0.0)


def test_initial_guess_respected():
    mat = laplacian_2d(4)
    x_true = np.ones(mat.num_rows)
    b = mat.matvec(x_true)
    result = conjugate_gradient(mat, b, x0=x_true)
    assert result.converged
    assert result.iterations == 0


def test_iteration_cap_reported_as_nonconverged():
    mat = laplacian_2d(8)
    b = np.ones(mat.num_rows)
    result = jacobi(mat, b, max_iterations=2, tol=1e-14)
    assert not result.converged
    assert result.iterations == 2


def test_residual_history_is_monotone_for_cg():
    mat = laplacian_2d(5)
    b = np.random.default_rng(3).standard_normal(mat.num_rows)
    result = conjugate_gradient(mat, b, tol=1e-12)
    history = np.array(result.residual_history)
    # CG residual norms are not strictly monotone in general, but the
    # envelope must decay: final residual far below the initial one.
    assert history[-1] < 1e-8 * history[0]


def test_matvec_count_reported():
    mat = laplacian_2d(4)
    b = np.ones(mat.num_rows)
    result = conjugate_gradient(mat, b, tol=1e-10)
    assert result.matvec_count >= result.iterations


def test_sor_omega_validation():
    mat = laplacian_2d(3)
    with pytest.raises(ValueError):
        sor(mat, np.ones(mat.num_rows), omega=2.5)


def test_jacobi_requires_nonzero_diagonal():
    builder = CooBuilder(2, 2)
    builder.add(0, 1, 1.0)
    builder.add(1, 0, 1.0)
    with pytest.raises(ValueError):
        jacobi(builder.to_csr(), np.ones(2))


def test_rhs_length_validated():
    mat = laplacian_2d(3)
    with pytest.raises(ValueError):
        conjugate_gradient(mat, np.ones(5))


class TestPreconditioning:
    def test_jacobi_preconditioner_reduces_cg_iterations(self):
        mat = laplacian_2d(8)
        # Badly scaled version: multiply rows/cols by wild factors.
        scale = np.exp(np.linspace(0.0, 6.0, mat.num_rows))
        from repro.linalg.sparse import diags

        d = diags(scale)
        # S A S is SPD with terrible conditioning.
        dense = d.to_dense() @ mat.to_dense() @ d.to_dense()
        b = np.ones(mat.num_rows)
        plain = conjugate_gradient(dense, b, tol=1e-10, max_iterations=5_000)
        from repro.linalg.sparse import CooBuilder as CB

        builder = CB(*dense.shape)
        rows, cols = np.nonzero(dense)
        for r, c in zip(rows, cols):
            builder.add(int(r), int(c), float(dense[r, c]))
        sparse_scaled = builder.to_csr()
        precond = JacobiPreconditioner(sparse_scaled)
        pcg = conjugate_gradient(sparse_scaled, b, preconditioner=precond, tol=1e-10)
        assert pcg.converged
        assert pcg.iterations < plain.iterations

    def test_ilu0_preconditioner_accelerates_bicgstab(self):
        mat = advection_diffusion(10, peclet=0.9)
        b = np.ones(mat.num_rows)
        plain = bicgstab(mat, b, tol=1e-10)
        ilu = bicgstab(mat, b, preconditioner=Ilu0Preconditioner(mat), tol=1e-10)
        assert ilu.converged
        assert ilu.iterations <= plain.iterations

    def test_gmres_with_ilu_matches_direct(self):
        mat = advection_diffusion(6)
        x_true = np.random.default_rng(4).standard_normal(mat.num_rows)
        b = mat.matvec(x_true)
        result = gmres(mat, b, preconditioner=Ilu0Preconditioner(mat), tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6, atol=1e-8)


def test_gmres_restart_still_converges():
    mat = advection_diffusion(7)
    x_true = np.random.default_rng(5).standard_normal(mat.num_rows)
    b = mat.matvec(x_true)
    result = gmres(mat, b, restart=5, tol=1e-10, max_iterations=20_000)
    assert result.converged
    np.testing.assert_allclose(result.x, x_true, rtol=1e-5, atol=1e-6)
