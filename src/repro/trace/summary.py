"""Per-phase breakdowns of a recorded trace (``repro trace-summary``).

Groups span records by name and renders time/iteration totals through
:func:`repro.reporting.ascii_table`, so a trace answers the paper's
two headline questions — where did the time go, and how many
iterations did each stage take — straight from the terminal.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.reporting import ascii_table
from repro.trace.exporter import TraceFile, read_trace

__all__ = ["phase_rows", "render_trace_summary", "summarize_trace_file"]

# Span attributes summed into the per-phase table when present
# (the PR-1 linear-kernel counters plus the Newton-level counts).
_SUMMED_ATTRS = (
    "inner_iterations",
    "matvecs",
    "preconditioner_builds",
    "iterations",
)


def phase_rows(trace: TraceFile) -> List[dict]:
    """One reporting row per span name: counts, time, summed counters."""
    order: List[str] = []
    grouped: Dict[str, List[dict]] = {}
    for span in trace.spans:
        name = span.get("name", "?")
        if name not in grouped:
            grouped[name] = []
            order.append(name)
        grouped[name].append(span)

    rows = []
    for name in order:
        spans = grouped[name]
        total = sum(span.get("t_end", 0.0) - span.get("t_start", 0.0) for span in spans)
        row = {
            "phase": name,
            "spans": len(spans),
            "total time (s)": total,
            "mean time (ms)": 1e3 * total / len(spans),
        }
        for attr in _SUMMED_ATTRS:
            summed = sum(span.get("attrs", {}).get(attr, 0) for span in spans)
            row[attr.replace("_", " ")] = summed
        rows.append(row)
    return rows


def render_trace_summary(trace: TraceFile) -> str:
    """Render the manifest, per-phase table and counters as text."""
    parts = []
    manifest = {
        key: value
        for key, value in trace.manifest.items()
        if key not in ("type", "shards")
    }
    if manifest:
        fields = ", ".join(f"{key}={value}" for key, value in manifest.items())
        parts.append(f"manifest: {fields}")
    if trace.manifest.get("shards"):
        parts.append(f"merged from {len(trace.manifest['shards'])} shard trace(s)")
    if trace.truncated:
        parts.append(
            "WARNING: trace file ends in a torn partial line (the writer "
            "was killed mid-record); totals below cover the complete "
            "records only"
        )

    if trace.spans:
        parts.append("per-phase breakdown:\n" + ascii_table(phase_rows(trace)))
    else:
        parts.append("(no spans recorded)")

    if trace.counters:
        counter_rows = [
            {"counter": name, "value": trace.counters[name]} for name in sorted(trace.counters)
        ]
        parts.append("counters:\n" + ascii_table(counter_rows))
    if trace.gauges:
        gauge_rows = [
            {"gauge": name, "value": trace.gauges[name]} for name in sorted(trace.gauges)
        ]
        parts.append("gauges (last value):\n" + ascii_table(gauge_rows))
    return "\n\n".join(parts)


def summarize_trace_file(path: Union[str, "object"]) -> str:
    """Read a JSONL trace from disk and render its summary."""
    return render_trace_summary(read_trace(path))
