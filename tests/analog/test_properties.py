"""Property-based tests for the analog layer's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog.function_generator import LookupTableFunction
from repro.analog.noise import NoiseModel, quantize_midrise
from repro.analog.scaling import ScaledSystem, required_scale
from repro.nonlinear.systems import CoupledQuadraticSystem

finite = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


class TestQuantizationProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=-2.0, max_value=2.0), min_size=1, max_size=20),
        st.integers(min_value=2, max_value=14),
    )
    def test_idempotent(self, values, bits):
        """Quantizing twice equals quantizing once."""
        arr = np.asarray(values)
        once = quantize_midrise(arr, bits, 1.0)
        twice = quantize_midrise(once, bits, 1.0)
        np.testing.assert_array_equal(once, twice)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=-0.99, max_value=0.98), min_size=2, max_size=20),
        st.integers(min_value=4, max_value=12),
    )
    def test_monotone(self, values, bits):
        """Quantization preserves order (monotone nondecreasing)."""
        arr = np.sort(np.asarray(values))
        out = quantize_midrise(arr, bits, 1.0)
        assert np.all(np.diff(out) >= 0.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=-0.99, max_value=0.99), st.integers(min_value=2, max_value=14))
    def test_error_within_half_step(self, value, bits):
        step = 2.0 / 2**bits
        out = float(quantize_midrise(np.array([value]), bits, 1.0)[0])
        assert abs(out - value) <= step / 2 + 1e-12


class TestScalingProperties:
    @settings(max_examples=40, deadline=None)
    @given(finite, finite, st.floats(min_value=0.5, max_value=10.0), finite, finite)
    def test_residual_conjugation_identity(self, a, b, scale, x, y):
        """G(w) = F(s w) / s^2 exactly, for any state and scale."""
        system = CoupledQuadraticSystem(a, b)
        scaled = ScaledSystem(system, scale)
        w = np.array([x, y]) / scale
        np.testing.assert_allclose(
            scaled.residual(w), system.residual(np.array([x, y])) / scale**2, atol=1e-10
        )

    @settings(max_examples=40, deadline=None)
    @given(finite, finite, st.floats(min_value=0.5, max_value=10.0))
    def test_roots_map_exactly(self, a, b, scale):
        """w* is a root of G iff s w* is a root of F."""
        system = CoupledQuadraticSystem(a, b)
        roots = system.real_roots()
        scaled = ScaledSystem(system, scale)
        for root in roots:
            assert np.linalg.norm(scaled.residual(root / scale)) < 1e-8

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.01, max_value=100.0))
    def test_required_scale_is_sufficient(self, bound):
        """Values within the bound, divided by the scale, fit in range."""
        noise = NoiseModel()
        scale = required_scale(bound, noise)
        assert bound / scale <= noise.full_scale * 1.0 + 1e-12

    def test_to_physical_roundtrip(self):
        system = CoupledQuadraticSystem(1.0, 1.0)
        scaled = ScaledSystem(system, 3.0)
        u = np.array([1.5, -2.0])
        np.testing.assert_allclose(scaled.to_physical(scaled.to_scaled(u)), u)


class TestLookupProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=-0.9, max_value=0.9),
        st.integers(min_value=6, max_value=12),
    )
    def test_interpolated_lookup_within_curvature_bound(self, x, bits):
        """Piecewise-linear interpolation error <= max|f''| h^2 / 8."""
        lut = LookupTableFunction(np.exp, (-1.0, 1.0), table_bits=bits)
        h = 2.0 / (2**bits - 1)
        bound = np.e * h**2 / 8.0 + 1e-12
        assert abs(lut(np.array([x]))[0] - np.exp(x)) <= bound

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-0.9, max_value=0.9), min_size=2, max_size=10))
    def test_monotone_function_stays_monotone(self, values):
        lut = LookupTableFunction(np.exp, (-1.0, 1.0), table_bits=8)
        arr = np.sort(np.asarray(values))
        out = lut(arr)
        assert np.all(np.diff(out) >= -1e-12)
