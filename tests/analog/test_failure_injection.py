"""Failure-injection tests: what breaks when the hardware degrades."""

import numpy as np
import pytest

from repro.analog.calibration import CalibrationConfig
from repro.analog.engine import AnalogAccelerator, solution_error
from repro.analog.noise import NoiseModel
from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts
from repro.pde.burgers import random_burgers_system


def measure_rms(accelerator_factory, trials=6):
    errors = []
    for trial in range(trials):
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(trial))
        golden = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-12, max_iterations=150)
        )
        if not golden.converged:
            continue
        accelerator = accelerator_factory(trial)
        result = accelerator.solve(system, initial_guess=guess)
        errors.append(solution_error(result.scaled_solution, golden.u / result.scale))
    assert errors
    return float(np.sqrt(np.mean(np.array(errors) ** 2)))


class TestCalibrationIsLoadBearing:
    def test_uncalibrated_die_is_much_worse(self):
        calibrated = measure_rms(lambda t: AnalogAccelerator(seed=t))
        raw = measure_rms(
            lambda t: AnalogAccelerator(seed=t, calibration=CalibrationConfig(enabled=False))
        )
        # Raw process variation (5% sigma per component, summed along
        # datapaths) must visibly exceed the calibrated error floor.
        assert raw > 1.5 * calibrated


class TestConverterResolution:
    def test_coarse_adc_floors_the_error(self):
        fine = measure_rms(lambda t: AnalogAccelerator(seed=t), trials=4)
        coarse = measure_rms(
            lambda t: AnalogAccelerator(seed=t, noise=NoiseModel(adc_bits=3)), trials=4
        )
        assert coarse > fine

    def test_coarse_dac_corrupts_programming(self):
        fine = measure_rms(lambda t: AnalogAccelerator(seed=t), trials=4)
        coarse = measure_rms(
            lambda t: AnalogAccelerator(seed=t, noise=NoiseModel(dac_bits=3)), trials=4
        )
        assert coarse > 0.5 * fine  # degradation or at least no free lunch


class TestThermalNoise:
    def test_heavy_noise_degrades_readout(self):
        quiet = measure_rms(lambda t: AnalogAccelerator(seed=t), trials=4)
        loud = measure_rms(
            lambda t: AnalogAccelerator(
                seed=t, noise=NoiseModel(thermal_noise_sigma=0.05), adc_repeats=1
            ),
            trials=4,
        )
        assert loud > quiet

    def test_averaging_recovers_accuracy(self):
        noisy_model = NoiseModel(thermal_noise_sigma=0.05)
        single = measure_rms(
            lambda t: AnalogAccelerator(seed=t, noise=noisy_model, adc_repeats=1), trials=4
        )
        averaged = measure_rms(
            lambda t: AnalogAccelerator(seed=t, noise=noisy_model, adc_repeats=64), trials=4
        )
        assert averaged < single
