"""Analog-seeded digital Newton: the hybrid pipeline of Section 6.2.

"The analog solution is set as the initial condition for a seeded
digital solver, which is then immediately in the quadratic convergence
region for the Newton method. The digital solver carries on and
terminates when the error metric is the smallest value representable in
double-precision floating point numbers."

The pipeline:

1. the analog accelerator (simulated, :mod:`repro.analog.engine`) runs
   continuous Newton on the problem and returns a ~5 %-accurate
   solution in its (fast) settle time;
2. classical undamped digital Newton polishes from that seed; because
   the seed sits inside the quadratic basin, a handful of iterations
   reach double-precision accuracy and no damping search is needed.

The baseline it beats is :func:`repro.nonlinear.newton.damped_newton_with_restarts`
from a naive initial guess, which at high Reynolds number must halve
its damping repeatedly (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analog.engine import AnalogAccelerator, AnalogSolveResult
from repro.nonlinear.newton import (
    LinearSolver,
    NewtonOptions,
    NewtonResult,
    damped_newton_with_restarts,
    newton_solve,
)
from repro.nonlinear.systems import NonlinearSystem

__all__ = ["HybridResult", "HybridSolver"]

# The paper polishes "to double-precision floating point epsilon"; on a
# residual norm this is epsilon scaled by the problem's magnitude.
DOUBLE_EPS = float(np.finfo(np.float64).eps)


@dataclass
class HybridResult:
    """Outcome of one hybrid (analog-seeded digital) solve."""

    u: np.ndarray
    converged: bool
    analog: AnalogSolveResult
    digital: NewtonResult

    @property
    def digital_iterations(self) -> int:
        return self.digital.iterations

    @property
    def analog_settle_time_units(self) -> float:
        return self.analog.settle_time_units

    @property
    def residual_norm(self) -> float:
        return self.digital.residual_norm


class HybridSolver:
    """The hybrid analog-digital nonlinear solver.

    Parameters
    ----------
    accelerator:
        The (simulated) analog accelerator used for seeding; a default
        board is created when omitted.
    polish_options:
        Newton options for the digital polish. The default uses full
        (undamped) steps — the point of a good seed — and a tolerance
        scaled from double epsilon.
    """

    def __init__(
        self,
        accelerator: Optional[AnalogAccelerator] = None,
        polish_options: Optional[NewtonOptions] = None,
        linear_solver: Optional[LinearSolver] = None,
    ):
        self.accelerator = accelerator or AnalogAccelerator()
        self.polish_options = polish_options or NewtonOptions(
            damping=1.0, tolerance=1e3 * DOUBLE_EPS, max_iterations=100
        )
        self.linear_solver = linear_solver

    def solve(
        self,
        system: NonlinearSystem,
        initial_guess: Optional[np.ndarray] = None,
        value_bound: float = 3.0,
        analog_time_limit: float = 60.0,
    ) -> HybridResult:
        """Analog seed, then digital polish to high precision."""
        guess = (
            np.zeros(system.dimension)
            if initial_guess is None
            else np.asarray(initial_guess, dtype=float)
        )
        analog = self.accelerator.solve(
            system,
            initial_guess=guess,
            value_bound=value_bound,
            time_limit=analog_time_limit,
        )
        seed = analog.solution if analog.converged else guess
        digital = newton_solve(system, seed, self.polish_options, self.linear_solver)
        if not digital.converged:
            # The seed was not good enough (rare: an unsettled analog
            # run); fall back to the robust damped baseline so the
            # hybrid solver never returns worse than the baseline.
            digital = damped_newton_with_restarts(
                system, seed, self.polish_options, self.linear_solver
            )
        return HybridResult(
            u=digital.u,
            converged=digital.converged,
            analog=analog,
            digital=digital,
        )

    def solve_baseline(
        self,
        system: NonlinearSystem,
        initial_guess: Optional[np.ndarray] = None,
    ) -> NewtonResult:
        """The paper's digital baseline: damped Newton with the halving
        restart schedule, from the same naive initial guess."""
        guess = (
            np.zeros(system.dimension)
            if initial_guess is None
            else np.asarray(initial_guess, dtype=float)
        )
        return damped_newton_with_restarts(system, guess, self.polish_options, self.linear_solver)
