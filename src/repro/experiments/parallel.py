"""Fan experiment sweeps across a process pool.

The figure sweeps (7/8/9) and the measured tables (2/4) are
embarrassingly parallel at the experiment level: each driver builds its
own problems, its own :class:`~repro.linalg.kernel.LinearKernel`
instances and its own stats sinks, so runs share no mutable state and
can execute in separate worker processes. :func:`run_parallel_sweep`
dispatches any subset of them over :class:`concurrent.futures.
ProcessPoolExecutor` and gathers the rendered results plus the
per-sweep linear-kernel accounting.

Sandboxed or single-core environments may refuse to fork; the sweep
then degrades to in-process serial execution with identical results
(the drivers are deterministic given their seeds).
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.reporting import ascii_table
from repro.trace import Tracer, merge_traces, write_trace

__all__ = ["SweepRun", "SweepResult", "run_parallel_sweep", "SWEEP_RUNNERS", "TRACEABLE"]

# Experiments safe to fan out: each call is self-contained (fresh RNGs,
# fresh kernels) and returns a picklable result object.
SWEEP_RUNNERS: Dict[str, Callable] = {
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "table2": run_table2,
    "table4": run_table4,
}

# Experiments whose drivers accept ``tracer=``. The others still write
# a manifest-only stub shard (``traced: false``) inside a traced sweep,
# so the merged manifest names every experiment that ran regardless of
# execution mode — shard layout parity is asserted in tests/trace/.
TRACEABLE = frozenset({"figure7", "figure8", "figure9"})

# Small default shapes so a full sweep stays interactive; pass
# ``overrides`` for paper-scale runs.
_DEFAULT_KWARGS: Dict[str, Dict] = {
    "figure7": {"grid_sizes": (2, 4), "reynolds_values": (0.01, 1.0), "trials": 1},
    "figure8": {"grid_n": 8, "reynolds_values": (0.25, 2.0), "trials": 2},
    "figure9": {"grid_sizes": (16,), "trials": 1, "seed": 1},
    "table2": {},
    "table4": {},
}


@dataclass
class SweepRun:
    """Outcome of one experiment inside a sweep."""

    name: str
    rendered: str
    error: Optional[str] = None
    linear_solves: int = 0
    inner_iterations: int = 0
    preconditioner_builds: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All runs of one sweep plus how they were executed."""

    runs: List[SweepRun] = field(default_factory=list)
    mode: str = "serial"  # "parallel" or "serial"
    workers: int = 1

    def run_named(self, name: str) -> Optional[SweepRun]:
        for run in self.runs:
            if run.name == name:
                return run
        return None

    def summary_rows(self) -> List[dict]:
        return [
            {
                "experiment": run.name,
                "status": "ok" if run.ok else f"error: {run.error}",
                "linear solves": run.linear_solves,
                "inner iterations": run.inner_iterations,
                "preconditioner builds": run.preconditioner_builds,
            }
            for run in self.runs
        ]

    def render(self) -> str:
        parts = [
            f"sweep of {len(self.runs)} experiment(s), "
            f"{self.mode} execution ({self.workers} worker(s))",
            ascii_table(self.summary_rows()),
        ]
        for run in self.runs:
            header = f"== {run.name} =="
            parts.append(f"{header}\n{run.rendered}" if run.ok else header)
        return "\n\n".join(parts)


def _run_one(name: str, kwargs: Dict, shard_path: Optional[str] = None) -> SweepRun:
    """Execute one experiment; must stay top-level for pickling.

    When ``shard_path`` is given, the worker always writes a shard for
    the parent to merge (workers in separate processes cannot share one
    tracer): experiments in :data:`TRACEABLE` record a full
    :class:`~repro.trace.Tracer`, the rest write a manifest-only stub
    (``traced: false``), and a failed run writes a stub carrying the
    error — every mode (pooled, serial degrade) emits the identical
    shard layout.
    """
    runner = SWEEP_RUNNERS[name]
    tracer = None
    if shard_path is not None:
        if name in TRACEABLE:
            tracer = Tracer(manifest={"experiment": name, "traced": True})
            kwargs = dict(kwargs, tracer=tracer)
        else:
            tracer = Tracer(manifest={"experiment": name, "traced": False})
    try:
        result = runner(**kwargs)
    except Exception as exc:  # pragma: no cover - defensive; drivers are total
        if shard_path is not None:
            stub = Tracer(
                manifest={
                    "experiment": name,
                    "traced": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            write_trace(stub, shard_path)
        return SweepRun(name=name, rendered="", error=f"{type(exc).__name__}: {exc}")
    if tracer is not None:
        write_trace(tracer, shard_path)
    stats = getattr(result, "kernel_stats", None)
    return SweepRun(
        name=name,
        rendered=result.render(),
        linear_solves=stats.solves if stats else 0,
        inner_iterations=stats.inner_iterations if stats else 0,
        preconditioner_builds=stats.preconditioner_builds if stats else 0,
    )


def _merge_shards(trace_path: str, shard_paths: List[str]) -> None:
    """Merge the shard traces that actually materialised, then clean up."""
    produced = [path for path in shard_paths if os.path.exists(path)]
    if produced:
        merge_traces(produced, trace_path)
    for path in produced:
        os.unlink(path)


def run_parallel_sweep(
    names: Sequence[str] = ("figure7", "figure8", "figure9", "table2", "table4"),
    overrides: Optional[Dict[str, Dict]] = None,
    max_workers: Optional[int] = None,
    trace_path: Optional[str] = None,
) -> SweepResult:
    """Run the named experiments, in parallel when the platform allows.

    ``overrides`` maps experiment name to keyword arguments merged over
    the small defaults (e.g. ``{"figure7": {"trials": 4}}``).
    ``max_workers=1`` forces serial execution without touching the pool.

    ``trace_path`` enables per-worker tracing: each worker writes
    ``<trace_path>.<name>.part`` (processes cannot share a tracer), and
    the shards are merged into a single trace file at ``trace_path`` —
    span ids renumbered, counters summed, each span tagged with its
    source experiment. Experiments outside :data:`TRACEABLE` contribute
    a manifest-only stub shard (``traced: false``) so the merged
    manifest names every experiment regardless of execution mode.
    """
    overrides = overrides or {}
    jobs: List[Tuple[str, Dict, Optional[str]]] = []
    shard_paths: List[str] = []
    for name in names:
        if name not in SWEEP_RUNNERS:
            known = ", ".join(sorted(SWEEP_RUNNERS))
            raise ValueError(f"unknown experiment {name!r}; known: {known}")
        kwargs = dict(_DEFAULT_KWARGS.get(name, {}))
        kwargs.update(overrides.get(name, {}))
        shard = None
        if trace_path is not None:
            shard = f"{trace_path}.{name}.part"
            shard_paths.append(shard)
        jobs.append((name, kwargs, shard))

    workers = max_workers if max_workers is not None else min(len(jobs), 4)
    if workers > 1 and len(jobs) > 1:
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_run_one, name, kwargs, shard) for name, kwargs, shard in jobs
                ]
                runs = [future.result() for future in futures]
            if trace_path is not None:
                _merge_shards(trace_path, shard_paths)
            return SweepResult(runs=runs, mode="parallel", workers=workers)
        except Exception:
            # Process pools need fork/spawn + a writable semaphore dir;
            # sandboxes may provide neither. Fall back to serial.
            pass
    runs = [_run_one(name, kwargs, shard) for name, kwargs, shard in jobs]
    if trace_path is not None:
        _merge_shards(trace_path, shard_paths)
    return SweepResult(runs=runs, mode="serial", workers=1)
