"""Sharded async solve service: the scale-out layer over the runtime.

One :class:`SolveService` owns N :class:`Shard` runtimes — each with
its own write-ahead journal, degradation schedule, fault plan, and
tracer — behind an asyncio front-end that applies admission control
(bounded queue, per-tenant quotas, reject-with-reason), per-tenant
priority scheduling, and shard health tracking. A shard whose process
pool dies mid-window is failed over: outcomes its journal committed
are replayed, the uncommitted remainder re-routes to healthy shards,
and when the whole fleet is dead a serial lifeboat shard keeps every
accepted request's exactly-once terminal-outcome guarantee. Shard
traces merge into one file via :mod:`repro.trace`'s shard-merge
machinery. :func:`serve_requests` is the synchronous wrapper the CLI
(``repro serve``) and the ``service_soak`` benchmark drive.
"""

from repro.service.admission import AdmissionQueue, QueueEntry
from repro.service.api import (
    REJECTION_REASONS,
    Rejection,
    ServiceRecord,
    ServiceRejected,
    ServiceResult,
    ShardDied,
    ShardSummary,
)
from repro.service.service import SolveService, serve_requests
from repro.service.shard import Shard

__all__ = [
    "AdmissionQueue",
    "QueueEntry",
    "REJECTION_REASONS",
    "Rejection",
    "ServiceRecord",
    "ServiceRejected",
    "ServiceResult",
    "Shard",
    "ShardDied",
    "ShardSummary",
    "SolveService",
    "serve_requests",
]
