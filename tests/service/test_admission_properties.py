"""Hypothesis property suite for the admission queue.

Three invariants, checked against a brute-force reference model over
arbitrary offer/pop interleavings:

* the queue never holds more than ``capacity`` entries — the bound is
  a hard bound, not a hint;
* every refusal names one of :data:`REJECTION_REASONS`, and names the
  *right* one (duplicate before quota before full, mirroring the
  most-specific-first contract);
* among admitted entries, pop order is exactly ``(-priority,
  arrival)`` — higher priority first, FIFO within a priority level,
  regardless of tenant interleaving.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.service import AdmissionQueue, REJECTION_REASONS

_OFFERS = st.tuples(
    st.just("offer"),
    st.integers(min_value=0, max_value=15),  # key space small enough to collide
    st.sampled_from(["acme", "bigco", "solo"]),
    st.integers(min_value=-3, max_value=3),
)
_OPS = st.lists(st.one_of(_OFFERS, st.just(("pop",))), max_size=60)


@st.composite
def _workloads(draw):
    capacity = draw(st.integers(min_value=1, max_value=8))
    quota = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=4)))
    return capacity, quota, draw(_OPS)


class _Model:
    """Brute-force mirror: a sorted list instead of a heap."""

    def __init__(self):
        self.entries = []  # (-priority, seq, key, tenant)
        self.seq = 0

    def admit(self, key, tenant, priority):
        self.entries.append((-priority, self.seq, key, tenant))
        self.seq += 1

    def queued_keys(self):
        return {entry[2] for entry in self.entries}

    def tenant_count(self, tenant):
        return sum(1 for entry in self.entries if entry[3] == tenant)

    def pop(self):
        self.entries.sort()
        return self.entries.pop(0)


@given(_workloads())
def test_bound_reasons_and_pop_order(workload):
    capacity, quota, ops = workload
    queue = AdmissionQueue(capacity, tenant_quota=quota)
    model = _Model()

    for op in ops:
        if op[0] == "offer":
            _, key_n, tenant, priority = op
            key = f"req-{key_n}"
            before = len(queue)
            reason = queue.offer(key, tenant=tenant, priority=priority)
            if reason is None:
                assert len(queue) == before + 1
                model.admit(key, tenant, priority)
            else:
                # Refusals never mutate, and always carry a known reason.
                assert len(queue) == before
                assert reason in REJECTION_REASONS
                if key in model.queued_keys():
                    assert reason == "duplicate_request"
                elif quota is not None and model.tenant_count(tenant) >= quota:
                    assert reason == "tenant_quota"
                else:
                    assert reason == "queue_full"
                    assert before == capacity
        elif len(queue):
            entry = queue.pop()
            expected = model.pop()
            assert (-entry.priority, entry.key, entry.tenant) == (
                expected[0],
                expected[2],
                expected[3],
            )
        # The invariant that makes queue_limit a real backpressure knob.
        assert len(queue) <= capacity
        assert queue.has_space == (len(queue) < capacity)

    # Drain: the remaining pop order must match the sorted model exactly.
    while len(queue):
        entry = queue.pop()
        expected = model.pop()
        assert (-entry.priority, entry.key, entry.tenant) == (
            expected[0],
            expected[2],
            expected[3],
        )
    assert not model.entries


@given(st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=20))
def test_priority_order_is_total_and_fifo_within_level(priorities):
    queue = AdmissionQueue(capacity=len(priorities))
    for index, priority in enumerate(priorities):
        assert queue.offer(f"req-{index}", priority=priority) is None
    popped = [queue.pop() for _ in range(len(priorities))]
    keys = [entry.key for entry in popped]
    expected = [
        f"req-{index}"
        for _, index in sorted(
            ((-priority, index) for index, priority in enumerate(priorities))
        )
    ]
    assert keys == expected
