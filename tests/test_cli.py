"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "figure9" in out


def test_table4_prints_rows(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "16 x 16" in out
    assert "352" in out


def test_table5_prints_matrix(capsys):
    assert main(["table5"]) == 0
    assert "this work" in capsys.readouterr().out


def test_figure2_small(capsys):
    assert main(["figure2", "--resolution", "24"]) == 0
    assert "contiguity" in capsys.readouterr().out


def test_figure6_small(capsys):
    assert main(["figure6", "--trials", "5"]) == 0
    out = capsys.readouterr().out
    assert "total RMS error" in out


def test_figure7_tiny(capsys):
    assert main(["figure7", "--grids", "2", "--reynolds", "1.0", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "2x2" in out
    # The linear-kernel accounting is surfaced with the figure.
    assert "digital linear kernel" in out
    assert "preconditioner builds" in out


def test_sweep_serial(capsys):
    assert main(["sweep", "--experiments", "table2,table4", "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "sweep of 2 experiment(s)" in out
    assert "table2" in out and "table4" in out


def test_sweep_rejects_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        main(["sweep", "--experiments", "figure99"])


def test_list_mentions_sweep(capsys):
    assert main(["list"]) == 0
    assert "sweep" in capsys.readouterr().out


def test_health_report_healthy_board(capsys):
    assert main(["health-report", "--solves", "2"]) == 0
    out = capsys.readouterr().out
    assert "degradation off" in out
    assert "analog health report" in out
    assert "seeds_rejected" in out


def test_health_report_rejects_bad_degradation_spec():
    with pytest.raises(SystemExit):
        main(["health-report", "--degradation", "not_a_knob=1.0"])


def test_health_report_fleet_renders_idle_boards(capsys):
    # More boards than solves: some boards never settle anything. Their
    # rate columns must render "-", not raise ZeroDivisionError.
    assert (
        main(
            [
                "health-report",
                "--solves",
                "2",
                "--boards",
                "4",
                "--settle-max-steps",
                "2000",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "fleet boards:" in out
    assert "fleet of 4 board(s)" in out
    idle_rows = [
        line
        for line in out.splitlines()
        if line.startswith(("2 ", "3 ")) and "| -" in line
    ]
    assert idle_rows, out


def test_list_mentions_health_report(capsys):
    assert main(["list"]) == 0
    assert "health-report" in capsys.readouterr().out


def test_serve_batch_with_degradation(capsys):
    assert (
        main(
            [
                "serve-batch",
                "--requests",
                "2",
                "--workers",
                "1",
                "--seed",
                "3",
                "--analog-time-limit",
                "1e-3",
                "--degradation",
                "offset_drift_sigma=0.05,seed=2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "outcome" in out or "converged" in out


def test_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_list_mentions_verify_journal_and_certify(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "verify-journal" in out
    assert "--certify" in out


def test_serve_batch_certify_writes_verifiable_journal(tmp_path, capsys):
    journal = tmp_path / "batch.journal"
    assert (
        main(
            [
                "serve-batch",
                "--requests",
                "2",
                "--workers",
                "1",
                "--seed",
                "3",
                "--analog-time-limit",
                "1e-3",
                "--certify",
                "--journal",
                str(journal),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "certificates_checked" in out
    # The journal the certified run wrote must audit clean.
    assert main(["verify-journal", str(journal)]) == 0
    assert "verdict: ok" in capsys.readouterr().out


def test_verify_journal_flags_tampering(tmp_path, capsys):
    import json

    from repro.checkpoint.atomic import decode_array, encode_array, payload_digest

    journal = tmp_path / "batch.journal"
    assert (
        main(
            [
                "serve-batch",
                "--requests",
                "2",
                "--workers",
                "1",
                "--seed",
                "3",
                "--analog-time-limit",
                "1e-3",
                "--certify",
                "--journal",
                str(journal),
            ]
        )
        == 0
    )
    capsys.readouterr()
    lines = []
    tampered = False
    for line in journal.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        if (
            not tampered
            and record.get("kind") == "outcome_committed"
            and record["outcome"].get("solution") is not None
        ):
            record.pop("sha256", None)
            outcome = record["outcome"]
            outcome["solution"] = encode_array(
                decode_array(outcome["solution"]) * 1.001
            )
            record["sha256"] = payload_digest(record)
            line = json.dumps(record)
            tampered = True
        lines.append(line)
    assert tampered
    journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert main(["verify-journal", str(journal)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_verify_journal_missing_file_exits_two(tmp_path, capsys):
    assert main(["verify-journal", str(tmp_path / "nope.journal")]) == 2
    assert "cannot audit" in capsys.readouterr().err


def test_serve_canary_interval_requires_boards():
    with pytest.raises(SystemExit):
        main(
            [
                "serve",
                "--requests",
                "2",
                "--canary-interval",
                "2",
            ]
        )
