"""Golden-file regression for the ``repro serve`` summary output.

Routing is deterministic at these parameters — every request is
submitted before the dispatcher runs, windows go to the lowest-indexed
idle healthy shard, and the workload is fully seeded — so everything
except the wall-clock ``timing:`` line is pinned byte for byte.
Intentional output changes are recorded with ``pytest
--update-golden``.
"""

import re

from repro.cli import main


def _normalize(text: str) -> str:
    """Strip trailing whitespace: ascii_table pads the last column."""
    return "\n".join(line.rstrip() for line in text.splitlines()) + "\n"


def _mask_timing(text: str) -> str:
    """Blank the one line carrying wall-clock figures.

    ``ServiceResult.render()`` keeps every measured duration on the
    single ``timing:`` line precisely so this mask can stay this
    simple; a timing figure leaking anywhere else fails the golden.
    """
    return re.sub(r"^timing: .*$", "timing: <masked>", text, flags=re.MULTILINE)


def _run_cli(argv, capsys) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


class TestServeGolden:
    def test_serve_summary_matches_golden(self, capsys, golden):
        out = _run_cli(
            [
                "serve",
                "--requests",
                "6",
                "--shards",
                "2",
                "--batch-window",
                "3",
                "--grids",
                "2",
                "--seed",
                "0",
            ],
            capsys,
        )
        masked = _mask_timing(_normalize(out))
        assert "timing: <masked>" in masked  # the mask actually bit
        golden("serve_summary", masked)

    def test_serve_summary_with_tenants_matches_golden(self, capsys, golden):
        out = _run_cli(
            [
                "serve",
                "--requests",
                "4",
                "--shards",
                "2",
                "--batch-window",
                "2",
                "--tenants",
                "2",
                "--grids",
                "2",
                "--seed",
                "0",
            ],
            capsys,
        )
        golden("serve_summary_tenants", _mask_timing(_normalize(out)))
