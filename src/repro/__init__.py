"""repro: hybrid analog-digital solution of nonlinear PDEs.

An open-source reproduction of Huang et al., "Hybrid Analog-Digital
Solution of Nonlinear Partial Differential Equations" (MICRO-50, 2017).

The library is organized bottom-up:

* :mod:`repro.linalg` -- dense/sparse linear algebra, Krylov solvers,
  preconditioners, and the analog gradient-flow kernel.
* :mod:`repro.ode` -- explicit and adaptive ODE integration with settle
  detection (the analog accelerator's notion of "done").
* :mod:`repro.nonlinear` -- digital Newton variants, the continuous
  Newton flow, homotopy continuation, and basin-of-attraction maps.
* :mod:`repro.pde` -- structured grids, finite-difference stencils,
  Crank-Nicolson time stepping, and the 2-D viscous Burgers' equation.
* :mod:`repro.analog` -- a component-level simulator of the prototyped
  analog accelerator (tiles, chips, fabric, calibration, noise, and the
  Figure-4-style programming API).
* :mod:`repro.core` -- the paper's headline method: analog-seeded
  digital Newton, plus red-black nonlinear Gauss-Seidel decomposition.
* :mod:`repro.perf` -- CPU/GPU/analog time and energy models.
* :mod:`repro.workloads` -- instrumented mini-apps behind Table 1.
* :mod:`repro.experiments` -- one driver per paper table and figure.
"""

__version__ = "1.0.0"

# Headline public API, re-exported for convenience; the subpackages
# remain the canonical homes.
from repro.analog.engine import AnalogAccelerator, AnalogSolveResult, solution_error
from repro.core.gauss_seidel import RedBlackGaussSeidel
from repro.core.hybrid import HybridResult, HybridSolver
from repro.pde.burgers import BurgersStencilSystem, BurgersTimeStepper, random_burgers_system

__all__ = [
    "__version__",
    "AnalogAccelerator",
    "AnalogSolveResult",
    "solution_error",
    "HybridSolver",
    "HybridResult",
    "RedBlackGaussSeidel",
    "BurgersStencilSystem",
    "BurgersTimeStepper",
    "random_burgers_system",
]
