"""3-D scalar Burgers' equation via dimension splitting (Section 7).

"We note, however, all practical PDE solvers decouple the problem
dimensions and solve the problem in one or two dimensions at a time,
permitting the use of analog acceleration."

This module implements exactly that decoupling for the 3-D scalar
viscous Burgers equation

    u_t + u (u_x + u_y + u_z) - (1/Re) Lap(u) = 0

on an ``n^3`` grid with zero Dirichlet boundaries: each time step is a
sequence of *directional* implicit sub-steps (Douglas-Rachford-style
splitting), and every sub-step decomposes into independent 1-D line
problems — each a :class:`repro.pde.burgers1d.Burgers1DStencilSystem`
small enough for a line-sized analog accelerator. The line solver is
pluggable so the hybrid pipeline can take over.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nonlinear.newton import NewtonOptions, newton_solve
from repro.pde.burgers1d import Burgers1DStencilSystem

__all__ = ["Burgers3DSplitStepper"]

LineSolver = Callable[[Burgers1DStencilSystem, np.ndarray], np.ndarray]


def _default_line_solver(system: Burgers1DStencilSystem, guess: np.ndarray) -> np.ndarray:
    result = newton_solve(system, guess, NewtonOptions(tolerance=1e-10, max_iterations=40))
    return result.u if result.converged else guess


class Burgers3DSplitStepper:
    """Directionally split implicit stepping of 3-D scalar Burgers.

    Each step applies one implicit 1-D Burgers solve per grid line per
    direction with ``weight = dt / 3`` (the advective-diffusive load is
    split evenly across the three directional sub-steps). First-order
    accurate in time like classical Lie splitting; the point here is
    the structural one — 3-D work reduces to accelerator-sized lines.
    """

    def __init__(
        self,
        n: int,
        reynolds: float,
        dt: float,
        line_solver: Optional[LineSolver] = None,
    ):
        if n < 3:
            raise ValueError("need at least a 3x3x3 interior grid")
        if reynolds <= 0.0:
            raise ValueError("Reynolds number must be positive")
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.n = int(n)
        self.reynolds = float(reynolds)
        self.dt = float(dt)
        self.line_solver = line_solver or _default_line_solver
        self.lines_solved = 0

    def _sweep_axis(self, field: np.ndarray, axis: int) -> np.ndarray:
        """One implicit directional sub-step: solve every line along
        ``axis`` independently (these are the parallel analog solves)."""
        # ascontiguousarray: moveaxis returns a strided view whose
        # reshape would silently copy, detaching flat_out from out.
        moved = np.ascontiguousarray(np.moveaxis(field, axis, -1))
        out = np.empty(moved.shape)
        weight = self.dt / 3.0
        flat = moved.reshape(-1, self.n)
        flat_out = out.reshape(-1, self.n)
        for index, line in enumerate(flat):
            system = Burgers1DStencilSystem(
                num_nodes=self.n,
                reynolds=self.reynolds,
                rhs=line,
                left=0.0,
                right=0.0,
                weight=weight,
            )
            flat_out[index] = self.line_solver(system, line.copy())
            self.lines_solved += 1
        return np.moveaxis(out, -1, axis)

    def step(self, field: np.ndarray) -> np.ndarray:
        """Advance one split time step (x, then y, then z sweeps)."""
        field = np.asarray(field, dtype=float)
        if field.shape != (self.n, self.n, self.n):
            raise ValueError(f"field must have shape {(self.n,) * 3}")
        for axis in (0, 1, 2):
            field = self._sweep_axis(field, axis)
        return field

    def evolve(self, field: np.ndarray, num_steps: int) -> np.ndarray:
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        for _ in range(num_steps):
            field = self.step(field)
        return field

    def lines_per_step(self) -> int:
        """Independent line systems per time step: ``3 n^2`` — each one
        an accelerator-sized job, all same-direction lines parallel."""
        return 3 * self.n * self.n
