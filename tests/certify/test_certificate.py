"""Unit tier for the solve certificate: a pure observer that passes
honest answers, fails corrupted ones, and binds its verdict to the
exact solution bytes it judged."""

import numpy as np
import pytest

from repro.certify import (
    CertifyPolicy,
    SolveCertificate,
    certify_solution,
    solution_digest,
)
from repro.certify.certificate import NONFINITE_VALUE
from repro.nonlinear.newton import NewtonOptions, newton_solve
from repro.runtime import ProblemSpec

QUAD = ProblemSpec.quadratic(1.0, 1.0)


def quad_root():
    system, guess = QUAD.build()
    roots = np.asarray(system.real_roots(), dtype=float)
    # The root nearest the canonical initial guess — the one every
    # solver path in the suite converges to.
    return roots[int(np.argmin(np.linalg.norm(roots - guess, axis=1)))]


def burgers_solution(spec):
    system, guess = spec.build()
    result = newton_solve(system, guess, NewtonOptions(tolerance=1e-12))
    assert result.converged
    return result.u


class TestCertifyQuadratic:
    def test_true_root_passes_every_check(self):
        cert = certify_solution(QUAD, quad_root())
        assert cert.passed
        assert cert.verdict == "pass"
        assert cert.failed_checks() == ()
        assert {check.name for check in cert.checks} == {
            "finite",
            "bounds",
            "residual",
            "boundary",
            "conservation",
        }
        assert cert.relative_residual <= 1e-6

    def test_small_corruption_fails_residual(self):
        # The smallest injection the chaos seam uses (1e-3 relative)
        # must overshoot the certificate tolerance decisively.
        corrupted = quad_root() * (1.0 + 1e-3)
        cert = certify_solution(QUAD, corrupted)
        assert not cert.passed
        assert "residual" in {check.name for check in cert.failed_checks()}

    def test_nonfinite_solution_fails_finite_check(self):
        bad = quad_root()
        bad[0] = np.nan
        cert = certify_solution(QUAD, bad)
        assert not cert.passed
        failed = {check.name for check in cert.failed_checks()}
        assert "finite" in failed
        # Non-finite inputs never leak NaN/Inf into the (JSON-bound)
        # certificate record.
        for check in cert.checks:
            assert np.isfinite(check.value), check.name
        assert cert.relative_residual <= NONFINITE_VALUE

    def test_wild_excursion_fails_bounds(self):
        cert = certify_solution(QUAD, np.array([1e9, 1e9]))
        assert not cert.passed
        assert "bounds" in {check.name for check in cert.failed_checks()}

    def test_certificate_is_deterministic(self):
        a = certify_solution(QUAD, quad_root())
        b = certify_solution(QUAD, quad_root())
        assert a == b
        assert a.digest == b.digest


class TestCertifyBurgers:
    def test_converged_burgers_passes_including_conservation(self):
        spec = ProblemSpec.burgers(2, 2.0, seed=0)
        cert = certify_solution(spec, burgers_solution(spec))
        assert cert.passed, [c.name for c in cert.failed_checks()]
        by_name = {check.name: check for check in cert.checks}
        assert "mass defect" in by_name["conservation"].detail
        assert "boundary" in by_name["boundary"].detail

    def test_correlated_bias_fails(self):
        # A uniform additive bias is exactly the corruption an RMS norm
        # can dilute but the conservation sum cannot.
        spec = ProblemSpec.burgers(2, 2.0, seed=0)
        cert = certify_solution(spec, burgers_solution(spec) + 1e-3)
        assert not cert.passed


class TestDigestBinding:
    def test_solution_digest_tracks_bytes(self):
        root = quad_root()
        assert solution_digest(root) == solution_digest(root.copy())
        tweaked = root.copy()
        tweaked[0] = np.nextafter(tweaked[0], np.inf)
        assert solution_digest(tweaked) != solution_digest(root)

    def test_certificate_digest_changes_with_solution(self):
        a = certify_solution(QUAD, quad_root())
        b = certify_solution(QUAD, quad_root() * (1.0 + 1e-3))
        assert a.digest != b.digest
        assert a.solution_digest != b.solution_digest

    def test_record_round_trip_preserves_digest(self):
        cert = certify_solution(QUAD, quad_root())
        back = SolveCertificate.from_record(cert.to_record())
        assert back == cert
        assert back.digest == cert.digest


class TestCertifyPolicy:
    def test_coerce_contract(self):
        assert CertifyPolicy.coerce(None) is None
        assert CertifyPolicy.coerce(False) is None
        assert CertifyPolicy.coerce(True) == CertifyPolicy()
        policy = CertifyPolicy(max_relative_residual=1e-4)
        assert CertifyPolicy.coerce(policy) is policy
        assert CertifyPolicy.coerce(CertifyPolicy(enabled=False)) is None
        with pytest.raises(TypeError):
            CertifyPolicy.coerce("yes")

    def test_record_round_trip(self):
        policy = CertifyPolicy(max_relative_residual=1e-4, bounds_slack=5.0)
        assert CertifyPolicy.from_record(policy.to_record()) == policy

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_relative_residual": 0.0},
            {"bounds_slack": -1.0},
            {"canary_threshold": 0.0},
            {"reference_floor": 0.0},
        ],
    )
    def test_rejects_nonpositive_tolerances(self, kwargs):
        with pytest.raises(ValueError):
            CertifyPolicy(**kwargs)

    def test_loose_policy_accepts_what_default_rejects(self):
        corrupted = quad_root() * (1.0 + 1e-3)
        assert not certify_solution(QUAD, corrupted).passed
        loose = CertifyPolicy(max_relative_residual=10.0)
        assert certify_solution(QUAD, corrupted, policy=loose).passed
