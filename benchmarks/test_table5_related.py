"""Benchmark: Table 5 — related-work feature matrix.

Regenerates the qualitative summary and cross-checks that every
capability the "this work" row claims maps to a module that actually
exists in this library.
"""

from repro.experiments.table5 import run_table5


def test_table5(benchmark):
    result = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    print("\n" + result.render())

    rows = result.rows()
    assert len(rows) == 4
    this_work = rows[0]
    assert this_work["work"] == "this work"
    assert "homotopy" in this_work["problem abstraction"]
    assert "Gauss-Seidel" in this_work["analog-digital interaction"]

    # Every module claim resolves to an importable module.
    assert result.verify_module_claims() == []
