"""Benchmark: Figure 3 — Equation 2 with and without homotopy.

Regenerates the three outcome maps and asserts the figure's claims:
naive continuous Newton leaves a wrong-result region; the homotopy
start settles every pixel on one of the four (+-1, +-1) roots; and at
the homotopy end "all choices of initial conditions ... lead to one
correct solution or another", with the chip returning two roots.
"""

import numpy as np

from repro.experiments.figure3 import run_figure3


def test_figure3(benchmark):
    result = benchmark.pedantic(run_figure3, kwargs={"resolution": 64}, rounds=1, iterations=1)
    print("\n" + result.render())

    rows = {row["panel"]: row for row in result.rows()}

    # Without homotopy: a nonempty wrong-result (pink) region.
    assert rows["continuous Newton, no homotopy"]["wrong-result fraction"] > 0.0

    # Homotopy beginning: the four sign-combination roots tile the plane.
    start = rows["homotopy beginning (Equation 3 roots)"]
    assert start["distinct outcomes"] == 4
    assert start["correct-solution fraction"] == 1.0

    # Homotopy end: every pixel lands on a true root of Equation 2.
    end = rows["homotopy end"]
    assert end["correct-solution fraction"] == 1.0
    end_map = result.maps["homotopy end"]
    reached = {int(v) for v in np.unique(end_map.labels)}
    assert all(v >= 0 for v in reached)
    # "The chip returns two roots for Equation 2."
    assert len(reached) == 2
    for label in reached:
        assert result.system.residual_norm(end_map.roots[label]) < 1e-6

    # Homotopy is strictly more reliable than the naive flow.
    assert (
        end["correct-solution fraction"]
        > rows["continuous Newton, no homotopy"]["correct-solution fraction"]
    )
