"""Canary probes: seeded known-answer solves as a leading health signal.

The fleet's rejection/drift EWMAs are *trailing* indicators — they need
user traffic to fail before they move. A canary probe inverts that: the
service periodically routes a cheap solve with a *known* answer (the
paper's Equation 2 coupled quadratic, whose real roots are available in
closed form) through each board's own seed streams and measures the
settled solution's error against the analytic root. Drifting silicon
fails its canary before user traffic sees it, and the board is
condemned into the existing fleet quarantine.

Probes consume only probe-keyed seed streams
(``request_id = "canary-<index>"``), disjoint from every traffic
stream, so enabling canaries never perturbs user-solve determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.certify.certificate import CertifyPolicy

__all__ = ["CanaryResult", "canary_reference", "probe_board", "run_canary_sweep"]

# One probe's analog budget: the quadratic is dimension 2; at these
# bounds a sub-probe settles in ~10 ms of wall time.
CANARY_TIME_LIMIT = 0.5
CANARY_SETTLE_MAX_STEPS = 2_000
CANARY_VALUE_BOUND = 3.0
# One board verdict = median of this many independently-seeded
# sub-probes; a single settle's error spread overlaps between healthy
# and mildly-drifted silicon, the median of three does not.
CANARY_PROBE_REPEATS = 3

_REFERENCE_CACHE: Optional[Tuple[object, np.ndarray, np.ndarray]] = None


def canary_reference() -> Tuple[object, np.ndarray, np.ndarray]:
    """``(system, initial_guess, real_roots)`` of the canary problem.

    The roots come from the closed-form quartic elimination
    (:meth:`~repro.nonlinear.systems.CoupledQuadraticSystem.real_roots`),
    not from any solver under test. Cached — the canary problem is a
    module constant.
    """
    global _REFERENCE_CACHE
    if _REFERENCE_CACHE is None:
        from repro.nonlinear.systems import CoupledQuadraticSystem

        system = CoupledQuadraticSystem(1.0, 1.0)
        roots = np.asarray(system.real_roots(), dtype=float)
        _REFERENCE_CACHE = (system, np.array([1.0, 1.0]), roots)
    return _REFERENCE_CACHE


@dataclass(frozen=True)
class CanaryResult:
    """One board's canary verdict."""

    board_id: int
    error: float
    """Median scaled RMS error against the nearest analytic root
    (:func:`repro.analog.engine.solution_error`, in fractions of the
    dynamic range) over the sub-probes; non-finite settles score
    infinite."""
    passed: bool
    threshold: float


def _sub_probe_error(board, runtime_seed: int, request_id: str) -> float:
    from repro.analog.engine import AnalogAccelerator, solution_error
    from repro.analog.health import DegradationSchedule

    system, guess, roots = canary_reference()
    degradation = None
    if board.model is not None:
        degradation = DegradationSchedule(
            board.model, seed=board.degradation_seed(runtime_seed, request_id, 0)
        )
    accelerator = AnalogAccelerator(
        seed=board.die_seed(runtime_seed, request_id, 0),
        degradation=degradation,
    )
    try:
        settled = accelerator.solve(
            system,
            initial_guess=guess,
            value_bound=CANARY_VALUE_BOUND,
            time_limit=CANARY_TIME_LIMIT,
            settle_max_steps=CANARY_SETTLE_MAX_STEPS,
        )
        solution = np.asarray(settled.solution, dtype=float)
        return min(
            solution_error(solution, root, scale=CANARY_VALUE_BOUND) for root in roots
        )
    except Exception:  # capacity/settle blowups read as a failed probe
        return float("inf")


def probe_board(
    board,
    runtime_seed: int,
    probe_index: int,
    policy: Optional[CertifyPolicy] = None,
) -> CanaryResult:
    """Run the known-answer solve through one board's silicon model.

    Each sub-probe's accelerator die and drift walk are seeded from the
    *board's own* streams (``die_seed`` / ``degradation_seed``) with a
    probe-keyed request id, so the probe measures the same silicon user
    traffic would hit without consuming any traffic stream.
    """
    policy = policy or CertifyPolicy()
    errors = sorted(
        _sub_probe_error(board, runtime_seed, f"canary-{probe_index}-{sub}")
        for sub in range(CANARY_PROBE_REPEATS)
    )
    error = errors[len(errors) // 2]
    threshold = policy.canary_threshold
    passed = bool(np.isfinite(error)) and error <= threshold
    return CanaryResult(
        board_id=board.board_id, error=float(error), passed=passed, threshold=threshold
    )


def run_canary_sweep(
    fleet,
    runtime_seed: int,
    probe_index: int,
    policy: Optional[CertifyPolicy] = None,
) -> Dict[str, int]:
    """Probe every eligible board; condemn the ones that fail.

    Returns the counter events of the sweep (``canary_probes``,
    ``canary_failures``, ``canary_quarantines`` plus the fleet's
    condemn events), for the caller to fold into its own counters.
    """
    policy = policy or CertifyPolicy()
    events: Dict[str, int] = {}

    def count(name: str, value: int = 1) -> None:
        events[name] = events.get(name, 0) + value

    for board in list(fleet.boards):
        if not board.eligible:
            continue
        result = probe_board(board, runtime_seed, probe_index, policy=policy)
        count("canary_probes")
        if result.passed:
            continue
        count("canary_failures")
        condemned = fleet.condemn(
            board.board_id, f"canary error {result.error:.3g} > {result.threshold:.3g}"
        )
        if condemned.get("boards_condemned"):
            count("canary_quarantines")
        for name, value in condemned.items():
            count(name, value)
    return events
