"""One analog board in a fleet: identity, seed streams, health EWMAs.

A fleet board is the parent-side bookkeeping for one piece of analog
silicon. The silicon itself is still simulated per attempt inside
:func:`repro.runtime.runtime._execute_attempt` (a fresh
:class:`~repro.analog.engine.AnalogAccelerator` whose die and
degradation schedule are seeded from stable streams, so any worker
process reproduces them bitwise); what the *board* owns is

* the **seed streams** that make it a distinct device: board 0 uses
  exactly the single-board streams the runtime always used
  (``stable_seed(seed, request, attempt, "die")`` /
  ``..., "degradation"``), which is what makes a one-board fleet
  bitwise-identical to the pre-fleet path; boards 1..N-1 mix their
  board id into the key, so each board is an independently-seeded
  piece of silicon with its own mismatch pattern and its own drift
  walk;
* the **recalibration epoch**: recalibrating a board re-nulls its
  drift, which in seed terms means the degradation walk restarts on a
  fresh stream (the epoch joins the key). The die seed never changes
  — recalibration trims the DACs, it does not swap the silicon;
* the **health EWMAs** the scheduler routes on: an EWMA of observed
  hybrid-rung seed rejections and an EWMA of the drift magnitude the
  attempt's schedule reported back, folded in by
  :meth:`AnalogFleet.observe <repro.fleet.scheduler.AnalogFleet.observe>`
  after every attempt that actually ran analog.

A :class:`BoardAssignment` is the picklable routing decision handed to
the worker: board id, both seeds, the per-board degradation model, and
the predictive gate's verdict. Workers stay stateless — all fleet
state lives in the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.analog.health import DegradationModel, _stable_seed

__all__ = ["AnalogBoard", "BoardAssignment"]


@dataclass(frozen=True)
class BoardAssignment:
    """One routing decision, shipped (picklable) into the attempt.

    ``gate_decision`` is the :class:`~repro.fleet.gate.PredictiveSeedGate`
    verdict: ``"allow"`` runs the ladder normally, ``"veto"`` skips the
    hybrid rung entirely (the settle this fleet exists to avoid), and
    ``"audit"`` runs a would-be veto anyway so the gate's prediction
    can be scored against the actual post-settle verdict.
    ``fleet_exhausted`` marks the structured fallback: no healthy board
    existed, the attempt degrades straight to damped Newton.
    """

    board_id: int
    die_seed: int
    degradation_seed: int
    epoch: int = 0
    degradation: Optional[DegradationModel] = None
    gate_decision: str = "allow"
    predicted_quality: float = 0.0
    conditioning: float = 1.0
    health_penalty: float = 0.0
    fleet_exhausted: bool = False

    @property
    def skip_analog(self) -> bool:
        """True when the attempt must not run the hybrid rung."""
        return self.fleet_exhausted or self.gate_decision == "veto"


@dataclass
class AnalogBoard:
    """Parent-side state of one board: seeds, wear evidence, lifecycle."""

    board_id: int
    model: Optional[DegradationModel] = None
    epoch: int = 0
    observations: int = 0
    rejection_ewma: float = 0.0
    drift_ewma: float = 0.0
    routed: int = 0
    vetoes: int = 0
    audits: int = 0
    gate_false_positives: int = 0
    recalibrations: int = 0
    quarantined: bool = False
    quarantine_reason: Optional[str] = None
    killed: bool = False

    @property
    def eligible(self) -> bool:
        return not (self.quarantined or self.killed)

    # -- seed streams ---------------------------------------------------

    def die_seed(self, runtime_seed: int, request_id: str, attempt: int) -> int:
        """The accelerator die seed this board gives (request, attempt).

        Board 0 reproduces the pre-fleet stream exactly; other boards
        key their id in, so each is independent silicon. Recalibration
        never changes the die — trimming is not a respin.
        """
        if self.board_id == 0:
            return _stable_seed(runtime_seed, request_id, attempt, "die") % (2**31)
        return (
            _stable_seed(
                runtime_seed, request_id, attempt, "die", "board", self.board_id
            )
            % (2**31)
        )

    def degradation_seed(self, runtime_seed: int, request_id: str, attempt: int) -> int:
        """Seed of this board's drift walk for (request, attempt).

        Board 0 at epoch 0 is the pre-fleet stream; any recalibration
        bumps the epoch into the key, modelling a re-nulled board whose
        subsequent drift is a fresh walk.
        """
        if self.board_id == 0 and self.epoch == 0:
            return _stable_seed(runtime_seed, request_id, attempt, "degradation")
        return _stable_seed(
            runtime_seed,
            request_id,
            attempt,
            "degradation",
            "board",
            self.board_id,
            "epoch",
            self.epoch,
        )

    # -- health evidence ------------------------------------------------

    def observe(self, rejected: bool, drift: float, alpha: float) -> None:
        """Fold one analog attempt's evidence into the board EWMAs."""
        rejected_value = 1.0 if rejected else 0.0
        drift = float(drift)
        if self.observations == 0:
            self.rejection_ewma = rejected_value
            self.drift_ewma = drift
        else:
            self.rejection_ewma += alpha * (rejected_value - self.rejection_ewma)
            self.drift_ewma += alpha * (drift - self.drift_ewma)
        self.observations += 1

    def recalibrate(self) -> None:
        """Re-null the board: EWMAs restart, the drift walk re-seeds
        (epoch bump), any quarantine lifts. The die is untouched."""
        self.epoch += 1
        self.recalibrations += 1
        self.observations = 0
        self.rejection_ewma = 0.0
        self.drift_ewma = 0.0
        self.quarantined = False
        self.quarantine_reason = None

    def summary(self) -> Dict[str, Any]:
        return {
            "board": self.board_id,
            "epoch": self.epoch,
            "routed": self.routed,
            "observations": self.observations,
            "rejection_ewma": self.rejection_ewma,
            "drift_ewma": self.drift_ewma,
            "vetoes": self.vetoes,
            "audits": self.audits,
            "gate_false_positives": self.gate_false_positives,
            "recalibrations": self.recalibrations,
            "quarantined": self.quarantined,
            "quarantine_reason": self.quarantine_reason,
            "killed": self.killed,
        }
