"""The regression gate's decision logic on synthetic report pairs."""

import copy

import pytest

from repro.bench.compare import (
    DEFAULT_TIME_TOLERANCE,
    DEFAULT_WORK_TOLERANCE,
    HOT_PATHS,
    HotPath,
    ScaleMismatch,
    compare_reports,
)
from repro.bench.schema import BenchReport, BenchmarkResult


def baseline_report():
    """A synthetic full-suite report covering every hot-path metric."""
    benchmarks = {
        "trajectory": BenchmarkResult(
            name="trajectory",
            wall_seconds=1.0,
            span_seconds={"linear_solve": 0.4},
            work={
                "newton_iterations": 50.0,
                "linear_solves": 50.0,
                "inner_iterations": 400.0,
            },
        ),
        "figure8_seeding": BenchmarkResult(
            name="figure8_seeding",
            wall_seconds=2.0,
            span_seconds={"linear_solve": 0.8, "analog_settle": 0.5},
            work={"inner_iterations": 900.0, "modeled_speedup": 8.0},
        ),
        "serve_batch": BenchmarkResult(
            name="serve_batch",
            wall_seconds=3.0,
            work={"requests_completed": 6.0, "newton_iterations": 120.0},
        ),
        "kernel_micro": BenchmarkResult(
            name="kernel_micro",
            wall_seconds=0.5,
            span_seconds={
                "stencil_assembly": 0.1,
                "csr_matvec": 0.05,
                "linear_solve": 0.2,
            },
            work={"inner_iterations": 360.0, "preconditioner_builds": 1.0},
        ),
        "service_soak": BenchmarkResult(
            name="service_soak",
            wall_seconds=0.4,
            counters={
                "service_requests_per_sec": 30.0,
                "service_p99_latency_s": 0.2,
            },
            work={
                "requests_completed": 12.0,
                "runtime_attempts": 12.0,
                "newton_iterations": 60.0,
            },
        ),
        "fleet_soak": BenchmarkResult(
            name="fleet_soak",
            wall_seconds=3.0,
            span_seconds={"analog_settle": 2.5},
            work={
                "requests_completed": 24.0,
                "runtime_attempts": 24.0,
                "settles_avoided": 18.0,
                "analog_settles": 6.0,
            },
        ),
        "certify_soak": BenchmarkResult(
            name="certify_soak",
            wall_seconds=2.0,
            counters={"certify_overhead_ratio": 1.02},
            work={
                "requests_completed": 12.0,
                "corruption_caught": 2.0,
                "resolves_triggered": 2.0,
                "certificates_failed": 2.0,
                "bitwise_identical": 1.0,
            },
        ),
    }
    return BenchReport(scale="smoke", seed=0, manifest={}, benchmarks=benchmarks)


def perturbed(report, benchmark, metric, factor):
    """Deep-copied report with one dotted metric scaled by ``factor``."""
    clone = copy.deepcopy(report)
    bench = clone.benchmarks[benchmark]
    group, _, key = metric.partition(".")
    if metric == "wall_seconds":
        bench.wall_seconds *= factor
    elif group == "span_seconds":
        bench.span_seconds[key] *= factor
    elif group == "work":
        bench.work[key] *= factor
    else:
        raise AssertionError(f"unhandled metric {metric}")
    return clone


class TestGateDecisions:
    def test_identical_reports_pass(self):
        base = baseline_report()
        result = compare_reports(base, copy.deepcopy(base))
        assert result.ok
        assert result.regressions == []
        statuses = {comparison.status for comparison in result.comparisons}
        assert statuses == {"ok"}

    def test_every_hot_path_is_compared(self):
        base = baseline_report()
        result = compare_reports(base, copy.deepcopy(base))
        assert len(result.comparisons) == len(HOT_PATHS)

    def test_injected_time_slowdown_fails(self):
        base = baseline_report()
        slow = perturbed(base, "trajectory", "wall_seconds", 1.5)
        result = compare_reports(base, slow)
        assert not result.ok
        labels = [comparison.path.label for comparison in result.regressions]
        assert labels == ["trajectory:wall_seconds"]

    def test_time_noise_within_tolerance_passes(self):
        base = baseline_report()
        noisy = perturbed(base, "trajectory", "wall_seconds", 1.0 + DEFAULT_TIME_TOLERANCE / 2)
        noisy = perturbed(noisy, "kernel_micro", "span_seconds.linear_solve", 0.9)
        assert compare_reports(base, noisy).ok

    def test_work_growth_past_one_percent_fails(self):
        base = baseline_report()
        grown = perturbed(base, "kernel_micro", "work.inner_iterations", 1.02)
        result = compare_reports(base, grown)
        assert [c.path.label for c in result.regressions] == [
            "kernel_micro:work.inner_iterations"
        ]

    def test_work_within_tolerance_passes(self):
        base = baseline_report()
        wiggle = perturbed(
            base, "kernel_micro", "work.inner_iterations", 1.0 + DEFAULT_WORK_TOLERANCE / 2
        )
        assert compare_reports(base, wiggle).ok

    def test_improvement_never_fails(self):
        base = baseline_report()
        faster = perturbed(base, "trajectory", "wall_seconds", 0.5)
        faster = perturbed(faster, "trajectory", "work.inner_iterations", 0.5)
        result = compare_reports(base, faster)
        assert result.ok
        improved = {c.path.label for c in result.comparisons if c.status == "improved"}
        assert "trajectory:wall_seconds" in improved
        assert "trajectory:work.inner_iterations" in improved

    def test_higher_is_better_gates_the_drop_direction(self):
        base = baseline_report()
        slower_speedup = perturbed(base, "figure8_seeding", "work.modeled_speedup", 0.8)
        result = compare_reports(base, slower_speedup)
        assert [c.path.label for c in result.regressions] == [
            "figure8_seeding:work.modeled_speedup"
        ]
        better_speedup = perturbed(base, "figure8_seeding", "work.modeled_speedup", 1.5)
        assert compare_reports(base, better_speedup).ok

    def test_work_only_skips_time_regressions(self):
        base = baseline_report()
        slow = perturbed(base, "trajectory", "wall_seconds", 3.0)
        result = compare_reports(base, slow, work_only=True)
        assert result.ok
        skipped = [c for c in result.comparisons if c.status == "skipped"]
        assert {c.path.kind for c in skipped} == {"time"}
        # ... but a work regression still fails in work-only mode.
        worse = perturbed(slow, "serve_batch", "work.newton_iterations", 1.1)
        assert not compare_reports(base, worse, work_only=True).ok

    def test_candidate_missing_metric_fails_the_gate(self):
        base = baseline_report()
        blinded = copy.deepcopy(base)
        del blinded.benchmarks["kernel_micro"].span_seconds["linear_solve"]
        result = compare_reports(base, blinded)
        assert not result.ok
        missing = [c for c in result.comparisons if c.status == "missing"]
        assert [c.path.label for c in missing] == ["kernel_micro:span_seconds.linear_solve"]

    def test_metric_new_in_candidate_is_reported_not_gated(self):
        base = baseline_report()
        del base.benchmarks["trajectory"].work["inner_iterations"]
        candidate = baseline_report()
        result = compare_reports(base, candidate)
        assert result.ok
        new = [c for c in result.comparisons if c.status == "new"]
        assert [c.path.label for c in new] == ["trajectory:work.inner_iterations"]

    def test_custom_tolerances_are_respected(self):
        base = baseline_report()
        slow = perturbed(base, "trajectory", "wall_seconds", 1.5)
        assert compare_reports(base, slow, time_tolerance=0.6).ok
        wiggle = perturbed(base, "trajectory", "work.linear_solves", 1.005)
        assert not compare_reports(base, wiggle, work_tolerance=0.001).ok


class TestComparability:
    def test_scale_mismatch_refused(self):
        base = baseline_report()
        other = copy.deepcopy(base)
        other.scale = "full"
        with pytest.raises(ScaleMismatch):
            compare_reports(base, other)

    def test_seed_mismatch_refused(self):
        base = baseline_report()
        other = copy.deepcopy(base)
        other.seed = 7
        with pytest.raises(ScaleMismatch):
            compare_reports(base, other)


class TestRendering:
    def test_render_shows_gate_verdict(self):
        base = baseline_report()
        ok_text = compare_reports(base, copy.deepcopy(base)).render()
        assert "gate: OK" in ok_text
        fail_text = compare_reports(
            base, perturbed(base, "trajectory", "wall_seconds", 2.0)
        ).render()
        assert "gate: FAIL" in fail_text
        assert "trajectory:wall_seconds" in fail_text

    def test_hot_path_label(self):
        path = HotPath("trajectory", "work.linear_solves", "work")
        assert path.label == "trajectory:work.linear_solves"
