"""Table 3: analog chip component use per PDE variable.

Compiles a Burgers stencil onto a simulated board and reports the
compiler's per-variable allocation plan by circuit role, with the
area/power bottom rows of the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analog.area_power import table3_totals
from repro.analog.compiler import compile_burgers
from repro.analog.fabric import Fabric
from repro.pde.burgers import random_burgers_system
from repro.reporting import ascii_table

__all__ = ["Table3Result", "run_table3"]

# Paper Table 3, per-variable counts by component.
PAPER_TOTALS = {"integrator": 2, "fanout": 8, "multiplier": 8, "DAC": 4}


@dataclass
class Table3Result:
    rows_data: List[dict]
    tiles_allocated: int
    board_level_connections: int

    def rows(self) -> List[dict]:
        return self.rows_data

    def render(self) -> str:
        header = (
            f"tiles allocated: {self.tiles_allocated} "
            f"(board-level links: {self.board_level_connections})\n"
        )
        return header + ascii_table(self.rows_data)


def run_table3(grid_n: int = 2, seed: int = 0) -> Table3Result:
    """Compile an ``n x n`` Burgers problem and report Table 3."""
    system, _ = random_burgers_system(grid_n, 1.0, np.random.default_rng(seed))
    fabric = Fabric.for_variables(system.dimension, seed=seed)
    compiled = compile_burgers(fabric, system)
    rows = table3_totals(compiled.resources)
    result = Table3Result(
        rows_data=rows,
        tiles_allocated=len(compiled.tiles),
        board_level_connections=compiled.board_level_connections,
    )
    compiled.release()
    return result
