"""Fault-tolerant batched solve runtime for the hybrid solver stack.

This package is the serving layer on top of the reproduction's solver
library: a bounded work queue of :class:`SolveRequest` objects fanned
over a process pool, each attempt supervised by deadlines, bounded
seeded-backoff retries, and an explicit degradation ladder
(analog-seeded hybrid -> damped Newton -> homotopy continuation ->
structured failure), with every request guaranteed to end in exactly
one :class:`SolveOutcome`. A seeded :class:`FaultInjector` provides the
chaos-testing seam (silent analog spikes, solver hangs, worker
crashes), and the whole story — rungs, retries, faults, crashes — is
recorded through :mod:`repro.trace`.
"""

from repro.runtime.api import (
    Deadline,
    DeadlineExceeded,
    PoolBroken,
    ProblemSpec,
    QueueFull,
    RetryPolicy,
    SolveOutcome,
    SolveRequest,
    TERMINAL_STATUSES,
    stable_seed,
)
from repro.runtime.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedWorkerCrash,
)
from repro.runtime.ladder import (
    DEFAULT_RUNGS,
    DegradationLadder,
    LadderResult,
    RungAttempt,
    damped_recovery,
)
from repro.runtime.health_report import HealthReportResult, run_health_report
from repro.runtime.runtime import AttemptReport, BatchResult, Runtime

__all__ = [
    "AttemptReport",
    "BatchResult",
    "HealthReportResult",
    "run_health_report",
    "DEFAULT_RUNGS",
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedWorkerCrash",
    "LadderResult",
    "PoolBroken",
    "ProblemSpec",
    "QueueFull",
    "RetryPolicy",
    "Runtime",
    "RungAttempt",
    "SolveOutcome",
    "SolveRequest",
    "TERMINAL_STATUSES",
    "damped_recovery",
    "stable_seed",
]
