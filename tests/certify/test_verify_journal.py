"""``repro verify-journal``: offline audit of committed batch journals.

The audits run against *real* journals written by a certified batch,
then tampered with surgically: each tamper rewrites the record's own
sha256 (so ``read_journal`` accepts it — the corruption is semantic,
not torn bytes) and the verifier must still catch it through digest
binding or re-certification.

The Hypothesis property pins the headline contract: corrupting a
stored solution past the verification tolerance is always flagged,
while clean (or below-tolerance) journals audit with zero
``certificates_failed``.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certify import CertifyPolicy, certify_solution, verify_journal
from repro.checkpoint import BatchJournal, JournalError
from repro.checkpoint.atomic import decode_array, encode_array, payload_digest
from repro.runtime import ProblemSpec, RetryPolicy, Runtime, SolveRequest


def _requests(n):
    return [
        SolveRequest(
            f"vj-{i:04d}",
            ProblemSpec.quadratic(1.0 + 0.05 * i, 1.0),
            analog_time_limit=0.5,
        )
        for i in range(n)
    ]


def _run_certified_batch(path, n=3):
    runtime = Runtime(
        workers=1,
        retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0),
        seed=0,
        certify=True,
        journal=BatchJournal(path),
    )
    result = runtime.run_batch(_requests(n))
    assert all(outcome.status == "converged" for outcome in result.outcomes)
    return result


@pytest.fixture(scope="module")
def clean_journal(tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "batch.journal"
    _run_certified_batch(path)
    return path


def _rewrite_outcome(src, dst, request_id, mutate):
    """Copy a journal, applying ``mutate(outcome_record)`` to one
    commit and re-sealing that record's sha256."""
    lines = []
    for line in src.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        if (
            record.get("kind") == "outcome_committed"
            and record.get("request_id") == request_id
        ):
            record.pop("sha256", None)
            mutate(record["outcome"])
            record["sha256"] = payload_digest(record)
            line = json.dumps(record)
        lines.append(line)
    dst.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return dst


def _corrupt_solution(factor):
    def mutate(outcome):
        solution = decode_array(outcome["solution"])
        outcome["solution"] = encode_array(solution * factor)

    return mutate


class TestVerifyJournal:
    def test_clean_journal_passes(self, clean_journal):
        verification = verify_journal(clean_journal)
        assert verification.ok
        assert verification.checked == 3
        assert verification.certificates_failed == 0
        assert "verdict: ok" in verification.render()

    def test_tampered_solution_is_a_certificate_mismatch(self, clean_journal, tmp_path):
        # The stored certificate still describes the original solution;
        # swapping the bytes must break the digest binding.
        tampered = _rewrite_outcome(
            clean_journal,
            tmp_path / "tampered.journal",
            "vj-0001",
            _corrupt_solution(1.0 + 1e-3),
        )
        verification = verify_journal(tampered)
        assert not verification.ok
        assert verification.certificates_failed == 1
        kinds = {problem["kind"] for problem in verification.problems}
        assert kinds == {"certificate-mismatch"}
        assert "FAILED" in verification.render()

    def test_stored_failure_verdict_is_flagged(self, clean_journal, tmp_path):
        def mutate(outcome):
            # A corrupted answer committed *with* its honestly-failing
            # certificate: digest binding holds, so the flag must come
            # from the stored verdict itself — the runtime should have
            # escalated instead of committing.
            corrupted = decode_array(outcome["solution"]) * 1.01
            cert = certify_solution(ProblemSpec.quadratic(1.0 + 0.05, 1.0), corrupted)
            assert not cert.passed
            outcome["solution"] = encode_array(corrupted)
            outcome["certificate"] = cert.to_record()

        tampered = _rewrite_outcome(
            clean_journal, tmp_path / "stored-fail.journal", "vj-0001", mutate
        )
        verification = verify_journal(tampered)
        assert not verification.ok
        assert {p["kind"] for p in verification.problems} == {"stored-failure"}

    def test_nonconverged_outcomes_are_skipped(self, clean_journal, tmp_path):
        def mutate(outcome):
            outcome["status"] = "failed"
            outcome["solution"] = None
            outcome["certificate"] = None

        tampered = _rewrite_outcome(
            clean_journal, tmp_path / "failed.journal", "vj-0002", mutate
        )
        verification = verify_journal(tampered)
        assert verification.ok
        assert verification.checked == 2
        assert verification.skipped == 1

    def test_torn_record_midfile_raises(self, clean_journal, tmp_path):
        lines = clean_journal.read_text(encoding="utf-8").splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        broken = tmp_path / "torn.journal"
        broken.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError):
            verify_journal(broken)

    def test_uncertified_journal_is_still_audited(self, tmp_path):
        # Recompute-only mode: no stored certificates, but a corrupted
        # stored answer is still caught as certified-bad.
        path = tmp_path / "uncertified.journal"
        runtime = Runtime(
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0),
            seed=0,
            journal=BatchJournal(path),
        )
        runtime.run_batch(_requests(2))
        assert verify_journal(path).ok
        tampered = _rewrite_outcome(
            path, tmp_path / "uncertified-bad.journal", "vj-0000",
            _corrupt_solution(1.01),
        )
        verification = verify_journal(tampered)
        assert not verification.ok
        assert {p["kind"] for p in verification.problems} == {"certified-bad"}

    def test_tolerance_override_relaxes_the_audit(self, clean_journal, tmp_path):
        tampered = _rewrite_outcome(
            clean_journal,
            tmp_path / "mild.journal",
            "vj-0000",
            _corrupt_solution(1.0 + 1e-3),
        )
        # Digest checking is suspended under an explicit tolerance (the
        # caller asked "is it right to within t", not "is it untouched"),
        # and 1e-3 corruption passes a 1.0 tolerance...
        assert verify_journal(tampered, tolerance=1.0).ok
        # ...but not a tight one.
        assert not verify_journal(tampered, tolerance=1e-8).ok


class TestCorruptionDetectionProperty:
    """Corruption above tolerance is always flagged; clean or
    below-tolerance journals audit with zero certificates_failed."""

    @settings(max_examples=20, derandomize=True)
    @given(
        magnitude=st.floats(min_value=1e-3, max_value=0.5),
        request_index=st.integers(min_value=0, max_value=2),
        sign=st.sampled_from([-1.0, 1.0]),
    )
    def test_corruption_above_tolerance_is_flagged(
        self, clean_journal, tmp_path_factory, magnitude, request_index, sign
    ):
        tmp_path = tmp_path_factory.mktemp("prop")
        rid = f"vj-{request_index:04d}"
        tampered = _rewrite_outcome(
            clean_journal,
            tmp_path / "corrupt.journal",
            rid,
            _corrupt_solution(1.0 + sign * magnitude),
        )
        verification = verify_journal(tampered, tolerance=1e-6)
        assert verification.certificates_failed >= 1
        assert any(problem["request_id"] == rid for problem in verification.problems)

    @settings(max_examples=20, derandomize=True)
    @given(
        nudge_ulps=st.integers(min_value=0, max_value=4),
        request_index=st.integers(min_value=0, max_value=2),
        tolerance=st.floats(min_value=1e-6, max_value=1e-2),
    )
    def test_clean_or_below_tolerance_never_flags(
        self, clean_journal, tmp_path_factory, nudge_ulps, request_index, tolerance
    ):
        tmp_path = tmp_path_factory.mktemp("prop")

        def mutate(outcome):
            solution = decode_array(outcome["solution"])
            for _ in range(nudge_ulps):  # a few ulps: far below tolerance
                solution = np.nextafter(solution, np.inf)
            outcome["solution"] = encode_array(solution)

        nudged = _rewrite_outcome(
            clean_journal,
            tmp_path / "nudged.journal",
            f"vj-{request_index:04d}",
            mutate,
        )
        verification = verify_journal(nudged, tolerance=tolerance)
        assert verification.ok
        assert verification.certificates_failed == 0
