"""Continuous algorithms for eigenanalysis (Section 9 of the paper).

The paper closes: "Continuous algorithms include continuous gradient
descent for linear algebra, continuous Newton's and homotopy
continuation for nonlinear equations, and others for problems such as
eigenanalysis and linear programming." This module implements the
eigenanalysis member of that family:

* the **Oja flow** ``dw/dt = A w - (w^T A w) w`` whose stable
  equilibria are the unit eigenvectors of the dominant eigenvalue of a
  symmetric matrix — a pure ODE an analog accelerator executes with
  multipliers and integrators, no steps, no normalization circuitry
  (the cubic term does the normalizing);
* **deflation** to extract successive eigenpairs;
* the **Rayleigh quotient** readout, which is what an ADC would
  measure at the settled state.

These are the exact analog-kernel shape the paper's conclusion points
at: the digital counterpart (power iteration) is an iterative method,
and the flow is its step-size-free continuous limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ode.events import integrate_until_settled

__all__ = ["EigenFlowResult", "oja_flow", "dominant_eigenpairs", "rayleigh_quotient"]


@dataclass
class EigenFlowResult:
    """One settled Oja-flow run."""

    eigenvector: np.ndarray
    eigenvalue: float
    settled: bool
    settle_time: float
    residual_norm: float
    """``||A v - lambda v||`` at the settled state."""


def rayleigh_quotient(matrix: np.ndarray, vector: np.ndarray) -> float:
    """``v^T A v / v^T v`` — the eigenvalue readout."""
    vector = np.asarray(vector, dtype=float)
    denom = float(vector @ vector)
    if denom == 0.0:
        raise ValueError("vector must be nonzero")
    return float(vector @ (np.asarray(matrix, dtype=float) @ vector)) / denom


def oja_flow(
    matrix: np.ndarray,
    w0: Optional[np.ndarray] = None,
    time_limit: float = 200.0,
    derivative_tolerance: float = 1e-8,
    seed: int = 0,
) -> EigenFlowResult:
    """Settle the Oja flow on a symmetric matrix.

    The flow ``dw/dt = A w - (w^T A w) w`` keeps ``||w|| -> 1`` and
    converges to a dominant-eigenvalue eigenvector from almost every
    start (starts orthogonal to the dominant eigenspace form a measure-
    zero separatrix — analog noise would kick a physical implementation
    off it, and the random default start avoids it here).
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    if not np.allclose(a, a.T, atol=1e-10):
        raise ValueError("Oja flow requires a symmetric matrix")
    n = a.shape[0]
    if w0 is None:
        rng = np.random.default_rng(seed)
        w0 = rng.standard_normal(n)
    w0 = np.asarray(w0, dtype=float)
    norm0 = np.linalg.norm(w0)
    if norm0 == 0.0:
        raise ValueError("initial vector must be nonzero")
    w0 = w0 / norm0

    # The flow's unit-norm attractor needs a positive dominant
    # eigenvalue; a spectral shift (a DAC-provided bias on the diagonal
    # in hardware) guarantees it without changing the eigenvectors.
    shift = float(np.max(np.sum(np.abs(a), axis=1))) + 1.0
    shifted = a + shift * np.eye(n)

    def rhs(_t: float, w: np.ndarray) -> np.ndarray:
        aw = shifted @ w
        return aw - float(w @ aw) * w

    solution = integrate_until_settled(
        rhs,
        w0,
        time_limit=time_limit,
        derivative_tolerance=derivative_tolerance,
        dwell=0.1,
        rtol=1e-9,
        atol=1e-12,
    )
    w = solution.final_state
    w = w / np.linalg.norm(w)
    eigenvalue = rayleigh_quotient(a, w)
    residual = np.linalg.norm(a @ w - eigenvalue * w)
    return EigenFlowResult(
        eigenvector=w,
        eigenvalue=eigenvalue,
        settled=solution.settled,
        settle_time=solution.settle_time if solution.settle_time is not None else solution.final_time,
        residual_norm=float(residual),
    )


def dominant_eigenpairs(
    matrix: np.ndarray,
    count: int,
    time_limit: float = 200.0,
    seed: int = 0,
) -> List[EigenFlowResult]:
    """Extract the ``count`` largest eigenpairs by flow + deflation.

    After each settled flow the found component is deflated
    (``A <- A - lambda v v^T``), the classic analog-friendly recipe:
    the deflation is a rank-one update realizable with multipliers.
    Eigenvalues are returned in descending order.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    a = np.array(matrix, dtype=float, copy=True)
    if count > a.shape[0]:
        raise ValueError("count exceeds the matrix dimension")
    results: List[EigenFlowResult] = []
    for index in range(count):
        result = oja_flow(a, time_limit=time_limit, seed=seed + index)
        # Re-evaluate against the ORIGINAL matrix for honest residuals.
        eigenvalue = rayleigh_quotient(matrix, result.eigenvector)
        residual = float(
            np.linalg.norm(np.asarray(matrix) @ result.eigenvector - eigenvalue * result.eigenvector)
        )
        results.append(
            EigenFlowResult(
                eigenvector=result.eigenvector,
                eigenvalue=eigenvalue,
                settled=result.settled,
                settle_time=result.settle_time,
                residual_norm=residual,
            )
        )
        # Deflate well below the remaining spectrum so the found
        # direction cannot re-dominate even when later eigenvalues are
        # negative.
        gap = float(np.max(np.sum(np.abs(np.asarray(matrix)), axis=1))) + 1.0
        a = a - (result.eigenvalue + gap) * np.outer(result.eigenvector, result.eigenvector)
    return results
