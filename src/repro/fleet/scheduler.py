"""Fleet-scale board management: health-aware routing, quarantine,
pressure-triggered recalibration, structured exhaustion.

:class:`AnalogFleet` owns N :class:`~repro.fleet.board.AnalogBoard`
states and makes every fleet decision in the parent process (guarded
by one small lock, so a multi-shard service can share a single fleet
from its window threads):

* **routing** — each attempt goes to the healthiest *eligible* board:
  minimum health penalty (the gate's weighted rejection/drift EWMAs),
  ties to the lowest board id. Quarantined and killed boards are never
  eligible — the invariant the Hypothesis property tier pins is that a
  routed request landed on a board that was healthy at decision time;
* **predictive gating** — the chosen board's predicted seed quality
  (:class:`~repro.fleet.gate.PredictiveSeedGate`) can veto the settle
  up front (``settles_avoided``) or audit a would-be veto to score the
  prediction (``gate_false_positive`` / ``gate_vetoes_confirmed``);
* **quarantine** — a board whose rejection EWMA or drift EWMA crosses
  the fleet thresholds (with enough observations to call it climate,
  not weather) is quarantined at board granularity: it keeps its wear
  state but receives no more routes;
* **recalibration** — when the quarantined fraction reaches
  ``recalibration_pressure``, the worst quarantined board is re-nulled
  (:meth:`~repro.fleet.board.AnalogBoard.recalibrate`: EWMAs restart,
  the drift walk re-seeds on a bumped epoch, quarantine lifts) —
  trading one recalibration's downtime against fleet capacity, exactly
  like the single-board monitor of PR 4 but across devices;
* **exhaustion** — when no eligible board exists the fleet returns a
  structured ``fleet_exhausted`` assignment: the attempt skips the
  hybrid rung and degrades straight to damped Newton. Requests keep
  completing; only the analog speedup is lost;
* **kill seam** — ``kill_board(id)`` (or the deterministic
  ``kill_board_after=(board, routes)`` chaos config) marks a board
  dead mid-batch. It is immediately ineligible, and any in-flight
  attempt whose answer came off its hybrid rung is invalidated by
  :meth:`AnalogFleet.invalidate_if_killed` — the runtime charges a
  failed attempt and the retry re-routes, the board-level mirror of a
  killed shard's journal fail-over.

Every decision is logged to ``audit_log`` with the board's eligibility
at decision time, so "no settle ran on a quarantined board" is an
assertable fact, not a hope.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analog.health import DegradationModel
from repro.fleet.board import AnalogBoard, BoardAssignment
from repro.fleet.gate import PredictiveSeedGate

__all__ = ["AnalogFleet", "FleetConfig", "FleetScheduler"]

_AUDIT_LOG_BOUND = 100_000


def _model_record(model: Optional[DegradationModel]) -> Optional[Dict[str, Any]]:
    if model is None:
        return None
    return {
        "gain_drift_sigma": model.gain_drift_sigma,
        "offset_drift_sigma": model.offset_drift_sigma,
        "gain_drift_bias": model.gain_drift_bias,
        "stuck_tile_rate": model.stuck_tile_rate,
        "dead_dac_rate": model.dead_dac_rate,
        "stuck_tiles": list(model.stuck_tiles),
        "dead_dacs": list(model.dead_dacs),
        "seed": model.seed,
    }


def _model_from_record(raw: Optional[Dict[str, Any]]) -> Optional[DegradationModel]:
    if raw is None:
        return None
    raw = dict(raw)
    raw["stuck_tiles"] = tuple(raw.get("stuck_tiles") or ())
    raw["dead_dacs"] = tuple(raw.get("dead_dacs") or ())
    return DegradationModel(**raw)


@dataclass
class FleetConfig:
    """Everything needed to rebuild an identical fleet (JSON-able).

    ``board_models`` overrides the runtime-level degradation model for
    specific boards (heterogeneous fleets: one hot board among healthy
    peers); unlisted boards inherit the runtime's model.
    ``kill_board_after=(board, routes)`` is the deterministic chaos
    seam: the board dies once the fleet has made that many routing
    decisions.
    """

    boards: int = 1
    quarantine_rejections: float = 0.75
    quarantine_drift: float = 1.2
    min_observations: int = 4
    recalibration_pressure: float = 0.5
    ewma_alpha: float = 0.5
    gate: PredictiveSeedGate = field(default_factory=PredictiveSeedGate)
    board_models: Optional[Dict[int, DegradationModel]] = None
    kill_board_after: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.boards < 1:
            raise ValueError("boards must be at least 1")
        if self.min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        if not 0.0 < self.recalibration_pressure <= 1.0:
            raise ValueError("recalibration_pressure must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")

    def to_record(self) -> Dict[str, Any]:
        """JSON round-trippable form (the journal's config record)."""
        return {
            "boards": self.boards,
            "quarantine_rejections": self.quarantine_rejections,
            "quarantine_drift": self.quarantine_drift,
            "min_observations": self.min_observations,
            "recalibration_pressure": self.recalibration_pressure,
            "ewma_alpha": self.ewma_alpha,
            "gate": {
                "threshold": self.gate.threshold,
                "rejection_weight": self.gate.rejection_weight,
                "drift_weight": self.gate.drift_weight,
                "min_observations": self.gate.min_observations,
                "audit_rate": self.gate.audit_rate,
                "enabled": self.gate.enabled,
            },
            "board_models": (
                {str(key): _model_record(model) for key, model in self.board_models.items()}
                if self.board_models
                else None
            ),
            "kill_board_after": (
                list(self.kill_board_after) if self.kill_board_after else None
            ),
        }

    @classmethod
    def from_record(cls, raw: Dict[str, Any]) -> "FleetConfig":
        board_models = None
        if raw.get("board_models"):
            board_models = {
                int(key): _model_from_record(model)
                for key, model in raw["board_models"].items()
            }
        kill = raw.get("kill_board_after")
        return cls(
            boards=int(raw.get("boards", 1)),
            quarantine_rejections=float(raw.get("quarantine_rejections", 0.75)),
            quarantine_drift=float(raw.get("quarantine_drift", 1.2)),
            min_observations=int(raw.get("min_observations", 4)),
            recalibration_pressure=float(raw.get("recalibration_pressure", 0.5)),
            ewma_alpha=float(raw.get("ewma_alpha", 0.5)),
            gate=PredictiveSeedGate(**(raw.get("gate") or {})),
            board_models=board_models,
            kill_board_after=(int(kill[0]), int(kill[1])) if kill else None,
        )


class AnalogFleet:
    """The fleet state machine; all methods are thread-safe."""

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        degradation: Optional[DegradationModel] = None,
        seed: int = 0,
    ):
        self.config = config or FleetConfig()
        self.gate = self.config.gate
        self.seed = int(seed)
        self.degradation = degradation
        overrides = self.config.board_models or {}
        self.boards: List[AnalogBoard] = [
            AnalogBoard(board_id=index, model=overrides.get(index, degradation))
            for index in range(self.config.boards)
        ]
        self.routes = 0
        self.audit_log: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self._lock = threading.Lock()

    # -- routing --------------------------------------------------------

    def eligible_boards(self) -> List[AnalogBoard]:
        return [board for board in self.boards if board.eligible]

    def route(
        self, request: Any, attempt: int
    ) -> Tuple[BoardAssignment, Dict[str, float]]:
        """Pick a board for one attempt; returns (assignment, events).

        ``events`` are the counter bumps this decision caused
        (``settles_avoided`` / ``gate_audits`` / ``fleet_exhausted``),
        for the runtime to record with journal attribution.
        """
        with self._lock:
            self._apply_scheduled_kill()
            self.routes += 1
            events: Dict[str, float] = {}
            candidates = [board for board in self.boards if board.eligible]
            if not candidates:
                events["fleet_exhausted"] = 1
                assignment = BoardAssignment(
                    board_id=-1,
                    die_seed=AnalogBoard(board_id=0).die_seed(
                        self.seed, request.request_id, attempt
                    ),
                    degradation_seed=0,
                    fleet_exhausted=True,
                )
                self._log(request.request_id, attempt, assignment, eligible=True)
                self._count(events)
                return assignment, events
            board = min(
                candidates, key=lambda b: (self.gate.penalty(b), b.board_id)
            )
            decision, predicted, kappa = self.gate.decide(
                board, request.problem, self.seed, request.request_id, attempt
            )
            board.routed += 1
            if decision == "veto":
                board.vetoes += 1
                events["settles_avoided"] = 1
            elif decision == "audit":
                board.audits += 1
                events["gate_audits"] = 1
            assignment = BoardAssignment(
                board_id=board.board_id,
                die_seed=board.die_seed(self.seed, request.request_id, attempt),
                degradation_seed=board.degradation_seed(
                    self.seed, request.request_id, attempt
                ),
                epoch=board.epoch,
                degradation=board.model,
                gate_decision=decision,
                predicted_quality=predicted,
                conditioning=kappa,
                health_penalty=self.gate.penalty(board),
            )
            self._log(request.request_id, attempt, assignment, eligible=board.eligible)
            self._count(events)
            return assignment, events

    def _apply_scheduled_kill(self) -> None:
        kill = self.config.kill_board_after
        if kill is None:
            return
        board_id, after_routes = kill
        if self.routes >= after_routes and 0 <= board_id < len(self.boards):
            board = self.boards[board_id]
            if not board.killed:
                board.killed = True
                self.counters["boards_killed"] = (
                    self.counters.get("boards_killed", 0) + 1
                )

    def kill_board(self, board_id: int) -> None:
        """Chaos seam: the board is gone, effective immediately."""
        with self._lock:
            board = self.boards[board_id]
            if not board.killed:
                board.killed = True
                self.counters["boards_killed"] = (
                    self.counters.get("boards_killed", 0) + 1
                )

    def condemn(self, board_id: int, reason: str) -> Dict[str, float]:
        """External evidence says this board lies: quarantine it now.

        The EWMA path (:meth:`observe`) quarantines on *trends*; this
        is the immediate path for point evidence too strong to average
        away — a failed solve certificate blamed on the board's hybrid
        rung, or a failed canary probe. The board keeps its wear state
        and stays recalibratable under pressure relief, same as an
        EWMA quarantine. Returns the counter events (``{}`` when the
        board is already out of service or the id is out of range).
        """
        with self._lock:
            if not 0 <= board_id < len(self.boards):
                return {}
            board = self.boards[board_id]
            if board.killed or board.quarantined:
                return {}
            board.quarantined = True
            board.quarantine_reason = reason
            events: Dict[str, float] = {
                "boards_condemned": 1,
                "boards_quarantined": 1,
            }
            self._count(events)
            return events

    # -- evidence and lifecycle -----------------------------------------

    def invalidate_if_killed(self, assignment: BoardAssignment, report: Any) -> Optional[str]:
        """An answer off a now-dead board's hybrid rung is no answer.

        Returns the failure message when the report must be voided
        (converged via the hybrid rung of a board killed while the
        attempt was in flight); the runtime then charges a failed
        attempt and the retry re-routes — board fail-over. Digital
        results (damped Newton, homotopy) survive the board's death.
        """
        if assignment.fleet_exhausted or assignment.board_id < 0:
            return None
        with self._lock:
            board = self.boards[assignment.board_id]
            if board.killed and report.rung == "hybrid":
                self.counters["board_failovers"] = (
                    self.counters.get("board_failovers", 0) + 1
                )
                return f"board {board.board_id} killed mid-attempt"
        return None

    def observe(self, assignment: BoardAssignment, report: Any) -> Dict[str, float]:
        """Fold one attempt's outcome back into fleet state.

        Only attempts that actually exercised the hybrid rung carry
        analog evidence (a vetoed or exhausted attempt says nothing
        about the board). Returns counter events:
        ``gate_false_positive`` / ``gate_vetoes_confirmed`` (audit
        verdicts), ``boards_quarantined``, ``board_recalibrations``,
        ``board_failovers``.
        """
        events: Dict[str, float] = {}
        if assignment.fleet_exhausted or assignment.board_id < 0:
            return events
        rungs_tried = tuple(report.rungs_tried or ())
        if "hybrid" not in rungs_tried:
            return events
        with self._lock:
            board = self.boards[assignment.board_id]
            # The post-settle verdict: the answer came off the hybrid
            # rung iff the seed was accepted and polished successfully.
            rejected = report.rung != "hybrid"
            drift = self._drift_from_health(report.health)
            board.observe(
                rejected=rejected, drift=drift, alpha=self.config.ewma_alpha
            )
            if assignment.gate_decision == "audit":
                if rejected:
                    events["gate_vetoes_confirmed"] = 1
                else:
                    board.gate_false_positives += 1
                    events["gate_false_positive"] = 1
            if self._maybe_quarantine(board):
                events["boards_quarantined"] = 1
            recalibrated = self._relieve_pressure()
            if recalibrated:
                events["board_recalibrations"] = recalibrated
            self._count(events)
        return events

    @staticmethod
    def _drift_from_health(health: Optional[Dict[str, Any]]) -> float:
        """Largest accumulated drift the attempt's schedule reported."""
        if not health:
            return 0.0
        magnitudes = [abs(float(v)) for v in (health.get("gain_drift") or {}).values()]
        magnitudes += [abs(float(v)) for v in (health.get("offset_drift") or {}).values()]
        return max(magnitudes, default=0.0)

    def _maybe_quarantine(self, board: AnalogBoard) -> bool:
        if board.quarantined or board.killed:
            return False
        if board.observations < self.config.min_observations:
            return False
        if board.rejection_ewma > self.config.quarantine_rejections:
            board.quarantined = True
            board.quarantine_reason = (
                f"rejection EWMA {board.rejection_ewma:.3g} beyond "
                f"{self.config.quarantine_rejections:.3g}"
            )
        elif board.drift_ewma > self.config.quarantine_drift:
            board.quarantined = True
            board.quarantine_reason = (
                f"drift EWMA {board.drift_ewma:.3g} beyond "
                f"{self.config.quarantine_drift:.3g}"
            )
        return board.quarantined

    def quarantine_pressure(self) -> float:
        alive = [board for board in self.boards if not board.killed]
        if not alive:
            return 0.0
        return sum(1 for board in alive if board.quarantined) / float(len(alive))

    def _relieve_pressure(self) -> int:
        """Recalibrate worst quarantined boards while pressure holds."""
        recalibrated = 0
        while self.quarantine_pressure() >= self.config.recalibration_pressure:
            quarantined = [board for board in self.boards if board.quarantined]
            if not quarantined:
                break
            worst = max(
                quarantined, key=lambda b: (self.gate.penalty(b), -b.board_id)
            )
            worst.recalibrate()
            recalibrated += 1
        return recalibrated

    # -- bookkeeping ----------------------------------------------------

    def _count(self, events: Dict[str, float]) -> None:
        for name, value in events.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def _log(
        self,
        request_id: str,
        attempt: int,
        assignment: BoardAssignment,
        eligible: bool,
    ) -> None:
        if len(self.audit_log) >= _AUDIT_LOG_BOUND:
            return
        self.audit_log.append(
            {
                "request_id": request_id,
                "attempt": attempt,
                "board": assignment.board_id,
                "decision": assignment.gate_decision,
                "exhausted": assignment.fleet_exhausted,
                "eligible_at_decision": eligible,
            }
        )

    def stats(self) -> Dict[str, Any]:
        """Fleet summary: per-board state plus decision counters.

        ``routed_while_ineligible`` is the audit-log invariant count —
        the chaos tier asserts it is zero (no settle was ever routed to
        a quarantined or killed board).
        """
        with self._lock:
            return {
                "boards": [board.summary() for board in self.boards],
                "routes": self.routes,
                "counters": dict(self.counters),
                "quarantine_pressure": self.quarantine_pressure(),
                "routed_while_ineligible": sum(
                    1
                    for entry in self.audit_log
                    if not entry["exhausted"] and not entry["eligible_at_decision"]
                ),
            }


# The routing half of AnalogFleet under the name the docs use; kept as
# an alias because the fleet object *is* the scheduler (one lock, one
# state machine) — splitting them would just add a layer of forwarding.
FleetScheduler = AnalogFleet
