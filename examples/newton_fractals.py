"""Newton fractals vs contiguous analog basins (Figures 2 and 3).

Renders, as terminal ASCII art, the convergence-basin maps that
motivate the analog approach:

* classical digital Newton on ``u^3 - 1``: fractal, intertwined basins;
* continuous (analog) Newton on the same problem: large contiguous
  basins — small changes in the initial guess rarely change the root;
* the coupled system of Equation 2 solved by homotopy continuation:
  every initial condition reaches a correct root.

Run:  python examples/newton_fractals.py
"""

from repro.experiments.figure2 import render_basin_ascii
from repro.nonlinear import (
    CoupledQuadraticSystem,
    contiguity_score,
    continuous_newton_basins,
    coupled_system_basins,
    newton_iteration_basins,
)

RESOLUTION = 72


def show(title: str, basins, glyph_note: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(render_basin_ascii(basins, max_size=48))
    print(
        f"\n  contiguity score: {contiguity_score(basins.labels):.4f}"
        f"   converged fraction: {basins.converged_fraction:.3f}"
    )
    print(f"  ({glyph_note})\n")


def main() -> None:
    classical = newton_iteration_basins(resolution=RESOLUTION, damping=1.0)
    show(
        "Classical Newton's method on u^3 - 1 (digital, fractal basins)",
        classical,
        "#, o, + = the three cube roots; . = no convergence",
    )

    continuous = continuous_newton_basins(resolution=RESOLUTION, noise_level=1e-3)
    show(
        "Continuous Newton's method on u^3 - 1 (analog, contiguous basins)",
        continuous,
        "same encoding; note the clean pinwheel instead of fractal filigree",
    )

    system = CoupledQuadraticSystem(rhs0=1.0, rhs1=1.0)
    direct = coupled_system_basins(system, resolution=RESOLUTION, method="newton_flow")
    show(
        "Equation 2 via continuous Newton, no homotopy (wrong-result region exists)",
        direct,
        ". = settles away from any true root (the paper's pink region)",
    )

    homotopy = coupled_system_basins(system, resolution=RESOLUTION, method="homotopy")
    show(
        "Equation 2 via homotopy continuation (every start reaches a true root)",
        homotopy,
        "no '.' pixels remain: homotopy repairs the wrong-result region",
    )


if __name__ == "__main__":
    main()
