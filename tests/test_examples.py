"""Smoke tests: the example scripts run end to end.

Each example is executed in-process (importing its module and calling
its entry function) so regressions in the public API surface fail the
suite rather than only breaking documentation.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.solve_cubic_continuously()
    accelerator = module.solve_equation2_on_analog()
    module.hybrid_polish(accelerator)
    out = capsys.readouterr().out
    assert "hybrid solution" in out
    assert "root" in out


def test_continuous_algorithms_runs(capsys):
    module = load_example("continuous_algorithms")
    module.eigenanalysis_demo()
    module.linear_programming_demo()
    out = capsys.readouterr().out
    assert "simplex optimum" in out
    assert "flow eigenvalue" in out


def test_newton_fractals_runs(capsys):
    module = load_example("newton_fractals")
    # Shrink the resolution for the smoke test.
    module.RESOLUTION = 24
    module.main()
    out = capsys.readouterr().out
    assert "contiguity score" in out
    assert "homotopy" in out


def test_microrobot_energy_budget_runs(capsys):
    module = load_example("microrobot_energy_budget")
    module.GRID_N = 4
    module.main()
    out = capsys.readouterr().out
    assert "ticks on battery" in out
    assert "hybrid analog+CPU" in out


def test_burgers_flow_runs(capsys):
    module = load_example("burgers_flow")
    module.GRID_N = 3
    module.STEPS = 2
    module.main()
    out = capsys.readouterr().out
    assert "kinetic energy" in out


def test_design_space_runs(capsys):
    module = load_example("accelerator_design_space")
    module.GRID_SIZES = (2, 4)
    module.main()
    out = capsys.readouterr().out
    assert "area mm^2" in out
    assert "ratio" in out


def test_bratu_fold_runs(capsys):
    module = load_example("bratu_fold")
    module.NODES = 15
    module.trace_branches()
    module.lookup_table_variant()
    out = capsys.readouterr().out
    assert "lower-branch peak" in out
    assert "table bits" in out


def test_quickstart_scope_panel(capsys):
    module = load_example("quickstart")
    module.solve_equation2_on_analog()
    out = capsys.readouterr().out
    assert "settling transient" in out
    assert "rho0" in out
