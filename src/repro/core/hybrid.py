"""Analog-seeded digital Newton: the hybrid pipeline of Section 6.2.

"The analog solution is set as the initial condition for a seeded
digital solver, which is then immediately in the quadratic convergence
region for the Newton method. The digital solver carries on and
terminates when the error metric is the smallest value representable in
double-precision floating point numbers."

The pipeline:

1. the analog accelerator (simulated, :mod:`repro.analog.engine`) runs
   continuous Newton on the problem and returns a ~5 %-accurate
   solution in its (fast) settle time;
2. classical undamped digital Newton polishes from that seed; because
   the seed sits inside the quadratic basin, a handful of iterations
   reach double-precision accuracy and no damping search is needed.

The baseline it beats is :func:`repro.nonlinear.newton.damped_newton_with_restarts`
from a naive initial guess, which at high Reynolds number must halve
its damping repeatedly (Figure 8).

All digital legs share one :class:`~repro.linalg.kernel.LinearKernel`
per solve, so the preconditioner factorized on the first Newton step is
reused across the polish (and any recovery restarts) instead of being
rebuilt per step, and the full inner-iteration accounting survives into
``HybridResult.digital.linear_stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analog.engine import AnalogAccelerator, AnalogSolveResult
from repro.linalg.kernel import LinearKernel
from repro.nonlinear.newton import (
    LinearSolverLike,
    NewtonOptions,
    NewtonResult,
    damped_newton_with_restarts,
    newton_solve,
)
from repro.nonlinear.systems import NonlinearSystem
from repro.runtime.ladder import (
    FALLBACK_TOLERANCE_FLOOR as _LADDER_FALLBACK_FLOOR,
    damped_recovery,
)
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["HybridResult", "HybridSolver"]

# The paper polishes "to double-precision floating point epsilon"; on a
# residual norm this is epsilon scaled by the problem's magnitude.
DOUBLE_EPS = float(np.finfo(np.float64).eps)


@dataclass
class HybridResult:
    """Outcome of one hybrid (analog-seeded digital) solve."""

    u: np.ndarray
    converged: bool
    analog: AnalogSolveResult
    digital: NewtonResult

    @property
    def digital_iterations(self) -> int:
        return self.digital.iterations

    @property
    def analog_settle_time_units(self) -> float:
        return self.analog.settle_time_units

    @property
    def residual_norm(self) -> float:
        return self.digital.residual_norm


class HybridSolver:
    """The hybrid analog-digital nonlinear solver.

    Parameters
    ----------
    accelerator:
        The (simulated) analog accelerator used for seeding; a default
        board is created when omitted.
    polish_options:
        Newton options for the digital polish. The default uses full
        (undamped) steps — the point of a good seed — and a tolerance
        scaled from double epsilon.
    fallback_options:
        Options for the damped-restart recovery used when the analog
        seed turns out not to sit in the quadratic basin (rare: an
        unsettled analog run). These are deliberately *relaxed*
        relative to the polish: the damped baseline started from a bad
        seed may never reach the eps-scaled polish tolerance, and with
        the tight tolerance it would burn every damping level to the
        iteration cap before reporting failure. The default relaxes
        the tolerance floor to ``1e-9``; if the recovery converges, a
        final polish at the tight tolerance is still attempted, and the
        reported ``converged`` status honestly reflects whichever
        tolerance was actually achieved.
    linear_solver:
        A :class:`~repro.linalg.kernel.LinearKernel` or bare callable
        shared by every digital leg. When omitted, each ``solve`` call
        creates its own kernel (per-solve factorization reuse without
        cross-problem contamination).
    """

    # Tolerance floor of the default recovery options: loose enough for
    # a damped search from a bad seed to terminate, tight enough that a
    # "recovered" solution is still a solution by any practical measure.
    # Shared with the runtime's damped_newton ladder rung.
    FALLBACK_TOLERANCE_FLOOR = _LADDER_FALLBACK_FLOOR

    def __init__(
        self,
        accelerator: Optional[AnalogAccelerator] = None,
        polish_options: Optional[NewtonOptions] = None,
        linear_solver: Optional[LinearSolverLike] = None,
        fallback_options: Optional[NewtonOptions] = None,
    ):
        self.accelerator = accelerator or AnalogAccelerator()
        self.polish_options = polish_options or NewtonOptions(
            damping=1.0, tolerance=1e3 * DOUBLE_EPS, max_iterations=100
        )
        self.fallback_options = fallback_options or NewtonOptions(
            damping=self.polish_options.damping,
            tolerance=max(self.polish_options.tolerance, self.FALLBACK_TOLERANCE_FLOOR),
            max_iterations=max(self.polish_options.max_iterations, 200),
            divergence_threshold=self.polish_options.divergence_threshold,
        )
        self.linear_solver = linear_solver

    def _solver(self) -> LinearSolverLike:
        """The shared linear solver for one hybrid solve's digital legs."""
        if self.linear_solver is not None:
            return self.linear_solver
        return LinearKernel()

    def solve(
        self,
        system: NonlinearSystem,
        initial_guess: Optional[np.ndarray] = None,
        value_bound: float = 3.0,
        analog_time_limit: float = 60.0,
        tracer: Optional[TracerLike] = None,
    ) -> HybridResult:
        """Analog seed, then digital polish to high precision.

        ``tracer`` records a ``solve`` span containing the accelerator's
        ``analog_settle`` span and the polish's ``newton_iter`` spans.
        """
        tracer = as_tracer(tracer)
        guess = (
            np.zeros(system.dimension)
            if initial_guess is None
            else np.asarray(initial_guess, dtype=float)
        )
        with tracer.span("solve", solver="hybrid", dimension=system.dimension) as span:
            analog = self.accelerator.solve(
                system,
                initial_guess=guess,
                value_bound=value_bound,
                time_limit=analog_time_limit,
                tracer=tracer,
            )
            rejected = analog.converged and not analog.seed_accepted
            seed = analog.solution if analog.converged and not rejected else guess
            solver = self._solver()
            if rejected:
                # The seed gate refused the settled analog solution: it
                # is *worse* than the naive guess (degraded board), so
                # undamped Newton from it would burn a doomed polish.
                # Go straight to the damped recovery from the guess.
                tracer.counter("hybrid_recoveries")
                digital = damped_recovery(
                    system,
                    seed,
                    self.polish_options,
                    self.fallback_options,
                    solver,
                    tracer=tracer,
                )
            else:
                digital = newton_solve(system, seed, self.polish_options, solver, tracer=tracer)
            if not digital.converged and not rejected:
                # The seed was not good enough (rare: an unsettled analog
                # run). Recover with the damped baseline under its own
                # relaxed options — the tight polish tolerance may be
                # unreachable from a bad seed, and looping every damping
                # level to the cap would only misreport the failure mode.
                # The recovery policy itself lives in the runtime's
                # degradation ladder (its damped_newton rung).
                tracer.counter("hybrid_recoveries")
                digital = damped_recovery(
                    system,
                    seed,
                    self.polish_options,
                    self.fallback_options,
                    solver,
                    tracer=tracer,
                )
            span.update(
                converged=digital.converged,
                digital_iterations=digital.iterations,
                analog_settle_time_units=analog.settle_time_units,
                seed_accepted=analog.seed_accepted,
            )
        return HybridResult(
            u=digital.u,
            converged=digital.converged,
            analog=analog,
            digital=digital,
        )

    def solve_baseline(
        self,
        system: NonlinearSystem,
        initial_guess: Optional[np.ndarray] = None,
        tracer: Optional[TracerLike] = None,
    ) -> NewtonResult:
        """The paper's digital baseline: damped Newton with the halving
        restart schedule, from the same naive initial guess."""
        guess = (
            np.zeros(system.dimension)
            if initial_guess is None
            else np.asarray(initial_guess, dtype=float)
        )
        return damped_newton_with_restarts(
            system, guess, self.polish_options, self._solver(), tracer=tracer
        )
