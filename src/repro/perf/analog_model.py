"""Converting analog settle times to seconds and joules.

"The time it takes for the continuous Newton ODE to reach a stable
value corresponds to the reaction time of the analog circuit, which is
in turn the solution time for the analog accelerator. The predicted
solution time of the 2x2 analog accelerator is normalized to match the
measured solution time of the physical analog accelerator."
(Section 6.1)

We follow the same normalization: one unit of continuous-Newton flow
time equals :attr:`AnalogTimingModel.time_constant_seconds` of wall
clock. The default is set so a typical 2x2 Burgers run (settle in
roughly 12 flow units) takes ~1e-4 s, the order of the measured analog
solution times in Figure 7; the constant is the circuit's
characteristic analog bandwidth, which is independent of problem size
— that invariance is exactly the analog advantage Figure 7 shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analog.area_power import AreaPowerModel

__all__ = ["AnalogTimingModel"]


@dataclass(frozen=True)
class AnalogTimingModel:
    """Settle-time normalization and energy integration.

    Attributes
    ----------
    time_constant_seconds:
        Wall-clock seconds per unit of continuous-Newton flow time.
    activity_factor:
        Time-averaged fraction of peak power during a run ("as the
        continuous Newton method approaches convergence the circuit
        activity and power consumption decreases", Table 4 caption).
    """

    time_constant_seconds: float = 8.0e-6
    activity_factor: float = 0.6
    area_power: AreaPowerModel = AreaPowerModel()

    def __post_init__(self) -> None:
        if self.time_constant_seconds <= 0.0:
            raise ValueError("time_constant_seconds must be positive")
        if not 0.0 < self.activity_factor <= 1.0:
            raise ValueError("activity_factor must be in (0, 1]")

    def seconds(self, settle_time_units: float) -> float:
        """Wall-clock seconds of one accelerator run."""
        if settle_time_units < 0.0:
            raise ValueError("settle_time_units must be nonnegative")
        return settle_time_units * self.time_constant_seconds

    def energy_joules(self, grid_n: int, settle_time_units: float) -> float:
        """Energy of one run of an ``n x n`` Burgers solve."""
        return self.area_power.run_energy_joules(
            grid_n, self.seconds(settle_time_units), self.activity_factor
        )
