"""Unit tests for :mod:`repro.fleet`: gate math, board lifecycle,
routing policy, config round-trip, and the two compatibility anchors —
board 0 reproduces the pre-fleet seed streams exactly, and a one-board
fleet leaves a Runtime batch bitwise identical to no fleet at all.
"""

import pytest

from repro.analog.health import DegradationModel, _stable_seed
from repro.experiments import run_capacity
from repro.fleet import (
    AnalogBoard,
    AnalogFleet,
    BoardAssignment,
    FleetConfig,
    PredictiveSeedGate,
    problem_conditioning,
)
from repro.runtime.api import ProblemSpec, RetryPolicy, SolveRequest
from repro.runtime.runtime import Runtime


class TestPredictiveGate:
    def test_penalty_is_weighted_ewma_sum(self):
        gate = PredictiveSeedGate(rejection_weight=2.0, drift_weight=4.0)
        board = AnalogBoard(board_id=1)
        board.rejection_ewma = 0.5
        board.drift_ewma = 0.25
        assert gate.penalty(board) == pytest.approx(2.0 * 0.5 + 4.0 * 0.25)

    def test_conditioning_is_one_for_quadratic_and_grows_for_burgers(self):
        assert problem_conditioning(ProblemSpec.quadratic()) == 1.0
        small = problem_conditioning(ProblemSpec.burgers(grid_n=2, reynolds=1.0, seed=0))
        large = problem_conditioning(ProblemSpec.burgers(grid_n=6, reynolds=1.0, seed=0))
        stiff = problem_conditioning(ProblemSpec.burgers(grid_n=2, reynolds=100.0, seed=0))
        assert 1.0 < small < large
        assert stiff > small

    def test_cold_board_always_allows(self):
        # min_observations keeps the gate honest on no evidence — and
        # keeps a healthy one-board fleet on the pre-fleet path.
        gate = PredictiveSeedGate(min_observations=2)
        board = AnalogBoard(board_id=0)
        board.rejection_ewma = 1.0  # even with terrible (unobserved) EWMAs
        board.drift_ewma = 10.0
        board.observations = 1
        decision, _, _ = gate.decide(board, ProblemSpec.quadratic(), 0, "r", 0)
        assert decision == "allow"

    def test_hot_board_is_vetoed_or_audited(self):
        gate = PredictiveSeedGate(min_observations=1, audit_rate=0.125)
        board = AnalogBoard(board_id=0)
        board.observations = 4
        board.rejection_ewma = 1.0
        board.drift_ewma = 2.0
        decisions = {
            gate.decide(board, ProblemSpec.quadratic(), 0, f"r{i}", 0)[0]
            for i in range(40)
        }
        assert "veto" in decisions
        assert "allow" not in decisions
        assert decisions <= {"veto", "audit"}

    def test_audit_draw_is_seeded_and_stable(self):
        gate = PredictiveSeedGate(min_observations=1, audit_rate=0.5)
        board = AnalogBoard(board_id=0)
        board.observations = 4
        board.rejection_ewma = 1.0
        first = [gate.decide(board, ProblemSpec.quadratic(), 7, f"r{i}", 0)[0] for i in range(20)]
        second = [gate.decide(board, ProblemSpec.quadratic(), 7, f"r{i}", 0)[0] for i in range(20)]
        assert first == second
        assert set(first) == {"veto", "audit"}

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveSeedGate(threshold=0.0)
        with pytest.raises(ValueError):
            PredictiveSeedGate(min_observations=0)
        with pytest.raises(ValueError):
            PredictiveSeedGate(audit_rate=1.5)


class TestBoardSeedStreams:
    def test_board_zero_epoch_zero_matches_pre_fleet_streams(self):
        """The bitwise-compatibility anchor: board 0 hands out exactly
        the die and degradation seeds the pre-fleet runtime derived."""
        board = AnalogBoard(board_id=0)
        assert board.die_seed(11, "req-0001", 2) == (
            _stable_seed(11, "req-0001", 2, "die") % 2**31
        )
        assert board.degradation_seed(11, "req-0001", 2) == _stable_seed(
            11, "req-0001", 2, "degradation"
        )

    def test_other_boards_are_independent_silicon(self):
        seeds = {
            AnalogBoard(board_id=b).die_seed(11, "req-0001", 0) for b in range(4)
        }
        assert len(seeds) == 4

    def test_recalibration_reseeds_drift_walk_not_die(self):
        board = AnalogBoard(board_id=0)
        die_before = board.die_seed(11, "r", 0)
        drift_before = board.degradation_seed(11, "r", 0)
        board.recalibrate()
        assert board.epoch == 1
        assert board.die_seed(11, "r", 0) == die_before
        assert board.degradation_seed(11, "r", 0) != drift_before


class TestQuarantineLifecycle:
    def _evidence(self, drift=0.0):
        return {"gain_drift": {"t0": drift}, "offset_drift": {}}

    class _Report:
        def __init__(self, rung, health):
            self.rung = rung
            self.rungs_tried = ("hybrid",)
            self.health = health

    def test_rejections_past_threshold_quarantine_after_hysteresis(self):
        fleet = AnalogFleet(
            FleetConfig(
                boards=2,
                min_observations=3,
                quarantine_rejections=0.6,
                recalibration_pressure=1.0,  # never recalibrate in this test
                gate=PredictiveSeedGate(enabled=False),
            ),
            seed=0,
        )
        target = BoardAssignment(board_id=0, die_seed=0, degradation_seed=0)
        for _ in range(3):
            # Hysteresis: never quarantined before min_observations.
            assert not fleet.boards[0].quarantined
            events = fleet.observe(
                target, self._Report("damped_newton", self._evidence())
            )
        assert events.get("boards_quarantined") == 1
        board = fleet.boards[0]
        assert board.quarantined
        assert "rejection EWMA" in board.quarantine_reason
        # Subsequent routes go to the healthy peer, never board 0.
        request = SolveRequest("q-0", ProblemSpec.quadratic())
        follow, _ = fleet.route(request, attempt=0)
        assert follow.board_id == 1

    def test_pressure_triggers_recalibration_and_lifts_quarantine(self):
        fleet = AnalogFleet(
            FleetConfig(
                boards=1,
                min_observations=1,
                quarantine_rejections=0.5,
                recalibration_pressure=0.5,
                gate=PredictiveSeedGate(enabled=False),
            ),
            seed=0,
        )
        request = SolveRequest("q-1", ProblemSpec.quadratic())
        assignment, _ = fleet.route(request, attempt=0)
        events = fleet.observe(
            assignment, self._Report("damped_newton", self._evidence())
        )
        # One board, quarantined => pressure 1.0 >= 0.5: recalibrated
        # in the same observe, quarantine lifted, epoch bumped.
        assert events.get("boards_quarantined") == 1
        assert events.get("board_recalibrations") == 1
        board = fleet.boards[0]
        assert not board.quarantined
        assert board.epoch == 1
        assert board.observations == 0

    def test_killed_board_voids_hybrid_answers_only(self):
        fleet = AnalogFleet(FleetConfig(boards=2), seed=0)
        request = SolveRequest("k-0", ProblemSpec.quadratic())
        assignment, _ = fleet.route(request, attempt=0)
        fleet.kill_board(assignment.board_id)
        hybrid = self._Report("hybrid", None)
        digital = self._Report("damped_newton", None)
        assert fleet.invalidate_if_killed(assignment, hybrid) is not None
        assert fleet.invalidate_if_killed(assignment, digital) is None
        assert fleet.stats()["counters"]["board_failovers"] == 1

    def test_scheduled_kill_fires_at_the_configured_route(self):
        fleet = AnalogFleet(
            FleetConfig(boards=2, kill_board_after=(0, 2)), seed=0
        )
        request = SolveRequest("s-0", ProblemSpec.quadratic())
        first, _ = fleet.route(request, attempt=0)
        assert first.board_id == 0 and not fleet.boards[0].killed
        second, _ = fleet.route(request, attempt=1)
        assert second.board_id == 0 and not fleet.boards[0].killed
        third, _ = fleet.route(request, attempt=2)
        assert fleet.boards[0].killed  # 2 routes were on the books
        assert third.board_id == 1


class TestFleetConfigRoundTrip:
    def test_to_from_record_round_trips(self):
        config = FleetConfig(
            boards=3,
            quarantine_rejections=0.6,
            min_observations=2,
            gate=PredictiveSeedGate(threshold=0.8, audit_rate=0.25),
            board_models={1: DegradationModel(offset_drift_sigma=0.4, seed=9)},
            kill_board_after=(2, 5),
        )
        again = FleetConfig.from_record(config.to_record())
        assert again.boards == 3
        assert again.quarantine_rejections == pytest.approx(0.6)
        assert again.min_observations == 2
        assert again.gate == config.gate
        assert again.kill_board_after == (2, 5)
        assert again.board_models[1].offset_drift_sigma == pytest.approx(0.4)
        assert again.board_models[1].seed == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(boards=0)
        with pytest.raises(ValueError):
            FleetConfig(min_observations=0)
        with pytest.raises(ValueError):
            FleetConfig(recalibration_pressure=0.0)


class TestOneBoardFleetBitwise:
    def test_boards_one_equals_pre_fleet_batch(self):
        """The acceptance anchor: `fleet` with boards=1 and default
        thresholds is bitwise identical to the pre-fleet path — same
        statuses, rungs, residuals, solutions, same counters."""
        def run(fleet):
            runtime = Runtime(
                seed=11,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0),
                degradation=DegradationModel(offset_drift_sigma=0.02, seed=7),
                fleet=fleet,
            )
            requests = [
                SolveRequest(
                    f"bw-{i:04d}",
                    ProblemSpec.quadratic(rhs0=1.0 + 0.1 * i),
                    analog_time_limit=1e-3,
                )
                for i in range(4)
            ]
            return runtime.run_batch(requests)

        reference = run(fleet=None)
        fleeted = run(fleet=FleetConfig(boards=1))
        for ref, new in zip(reference.outcomes, fleeted.outcomes):
            assert ref.status == new.status
            assert ref.rung == new.rung
            assert ref.rungs_tried == new.rungs_tried
            assert ref.residual_norm == new.residual_norm
            assert ref.attempts == new.attempts
            assert ref.health == new.health
            if ref.solution is None:
                assert new.solution is None
            else:
                assert ref.solution.tobytes() == new.solution.tobytes()
        # The fleet adds no counter noise on the healthy path: the only
        # difference is fleet bookkeeping, never solve accounting.
        assert reference.counters == {
            k: v for k, v in fleeted.counters.items() if not k.startswith("fleet_")
        } or reference.counters == fleeted.counters


class TestCapacityExperiment:
    def test_tiny_sweep_reports_full_grid(self):
        result = run_capacity(
            boards_list=(1, 2),
            rates=(2,),
            drift_sigma=0.0,
            seed=0,
            analog_time_limit=1e-3,
            settle_max_steps=500,
        )
        assert {(row["boards"], row["rate"]) for row in result.rows} == {(1, 2), (2, 2)}
        assert all(row["completed"] == 2 for row in result.rows)
        rendered = result.render()
        assert "boards needed per rate" in rendered
        assert "fleet capacity" in rendered

    def test_boards_needed_picks_smallest_meeting_target(self):
        result = run_capacity(
            boards_list=(1, 2),
            rates=(2,),
            drift_sigma=0.0,
            slo=1e20,  # every completed request counts as analog-served
            target=0.0,
            analog_time_limit=1e-3,
            settle_max_steps=500,
        )
        assert result.boards_needed() == {2: 1}

    def test_rejects_empty_or_invalid_sweeps(self):
        with pytest.raises(ValueError):
            run_capacity(boards_list=())
        with pytest.raises(ValueError):
            run_capacity(rates=(0,))
