"""ImplicitStepper: kernel reuse across time steps, scheme correctness."""

import numpy as np
import pytest

from repro.linalg.kernel import LinearKernel
from repro.linalg.sparse import CooBuilder
from repro.pde.timestepping import ImplicitStepper, SpatialOperator, TrajectoryResult


def _nonlinear_diffusion_operator(n=12, kappa=0.8):
    """1D diffusion with a cubic reaction term, sparse Jacobian."""

    def apply(y):
        out = np.empty_like(y)
        for i in range(n):
            left = y[i - 1] if i > 0 else 0.0
            right = y[i + 1] if i < n - 1 else 0.0
            out[i] = kappa * (2.0 * y[i] - left - right) + y[i] ** 3
        return out

    def jacobian(y):
        builder = CooBuilder(n, n)
        for i in range(n):
            builder.add(i, i, 2.0 * kappa + 3.0 * y[i] ** 2)
            if i > 0:
                builder.add(i, i - 1, -kappa)
            if i < n - 1:
                builder.add(i, i + 1, -kappa)
        return builder.to_csr()

    return SpatialOperator(n, apply=apply, jacobian=jacobian)


class TestImplicitStepper:
    def test_kernel_reused_across_time_steps(self):
        """Fixed grid => fixed sparsity => one factorization for a run."""
        kernel = LinearKernel()
        stepper = ImplicitStepper(
            _nonlinear_diffusion_operator(), dt=0.02, scheme="crank-nicolson", kernel=kernel
        )
        y0 = np.linspace(-0.5, 0.5, 12)
        trajectory = stepper.run(y0, steps=5)
        assert trajectory.converged
        assert kernel.stats.solves >= 5
        # The headline reuse property: many solves, one factorization
        # (modulo a quality-gate refresh, which this smooth run never
        # triggers).
        assert kernel.factorizations == 1
        assert kernel.reuses == kernel.stats.solves - 1

    def test_trajectory_result_accounting(self):
        stepper = ImplicitStepper(_nonlinear_diffusion_operator(), dt=0.02)
        trajectory = stepper.run(np.full(12, 0.3), steps=3)
        assert isinstance(trajectory, TrajectoryResult)
        assert trajectory.states.shape == (4, 12)
        assert len(trajectory.newton_results) == 3
        assert trajectory.linear_stats.solves == sum(
            r.linear_stats.solves for r in trajectory.newton_results
        )
        assert trajectory.total_newton_iterations > 0
        np.testing.assert_allclose(trajectory.y, trajectory.states[-1])

    @pytest.mark.parametrize("scheme", ["crank-nicolson", "implicit-euler", "bdf2"])
    def test_schemes_decay_toward_zero(self, scheme):
        # Diffusion + cubic damping from a smooth state: every implicit
        # scheme must decay the norm.
        stepper = ImplicitStepper(_nonlinear_diffusion_operator(), dt=0.05, scheme=scheme)
        y0 = np.full(12, 0.5)
        trajectory = stepper.run(y0, steps=8)
        assert trajectory.converged
        assert np.linalg.norm(trajectory.y) < np.linalg.norm(y0)

    def test_bdf2_bootstrap_and_reset(self):
        stepper = ImplicitStepper(_nonlinear_diffusion_operator(), dt=0.05, scheme="bdf2")
        y0 = np.full(12, 0.4)
        first = stepper.step(y0)
        assert first.converged
        assert stepper._previous is not None
        stepper.reset_history()
        assert stepper._previous is None

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            ImplicitStepper(_nonlinear_diffusion_operator(), dt=0.05, scheme="leapfrog")
