"""Clock re-basing of absorbed cross-process spans.

``time.perf_counter()`` has a per-process origin: a pool worker's raw
span timestamps live on a different clock than the parent's, so before
the re-base fix a merged trace's timeline was incomparable across the
process boundary (worker spans could appear to predate the batch or
land years away). ``Tracer.absorb`` now shifts the absorbed window
rigidly onto the absorbing tracer's clock, anchored so the latest
absorbed ``t_end`` is the parent's *now*; durations are differences,
so every span-sum a bench report reads is preserved exactly.
"""

import numpy as np

from repro.runtime import ProblemSpec, RetryPolicy, Runtime, SolveRequest
from repro.trace import Tracer


class FakeClock:
    """Deterministic injectable clock starting at an arbitrary origin."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def tick(self, dt=1.0):
        self.now += dt
        return self.now

    def __call__(self):
        return self.now


def _worker_trace(origin):
    """A 'worker' trace whose clock origin is nothing like the parent's."""
    clock = FakeClock(origin)
    worker = Tracer(clock=clock)
    with worker.span("ladder"):
        clock.tick(2.0)
        with worker.span("linear_solve"):
            clock.tick(3.0)
        clock.tick(1.0)
    return worker


class TestAbsorbRebase:
    def test_foreign_clock_lands_inside_parent_window(self):
        # Timeline on the parent clock: the batch span opens at 90 and
        # stays open while the worker executes; the bookkeeping
        # solve_attempt span opens post-hoc at 100, after the worker is
        # already done. The 6-unit worker window must land inside the
        # *batch* window — end-anchored at absorb time — even though it
        # starts before the solve_attempt span does.
        parent_clock = FakeClock(90.0)
        parent = Tracer(clock=parent_clock)
        worker = _worker_trace(origin=1e6)  # absurdly different origin

        with parent.span("runtime_batch"):
            parent_clock.tick(10.0)  # worker runs during this window
            with parent.span("solve_attempt"):
                parent_clock.tick(0.5)
                parent.absorb([record.to_record() for record in worker.spans])
                parent_clock.tick(0.5)
            parent_clock.tick(1.0)
        parent.check_closed()

        batch_record = parent.spans_named("runtime_batch")[0]
        for name in ("ladder", "linear_solve"):
            record = parent.spans_named(name)[0]
            assert batch_record.t_start <= record.t_start, name
            assert record.t_end <= batch_record.t_end, name
        # Anchor: latest absorbed end == parent clock at absorb time,
        # so the 6-unit window spans [94.5, 100.5] — starting before
        # the post-hoc solve_attempt span (100.0), as it physically did.
        ladder = parent.spans_named("ladder")[0]
        assert ladder.t_end == 100.5
        assert ladder.t_start == 94.5
        attempt_record = parent.spans_named("solve_attempt")[0]
        assert ladder.t_start < attempt_record.t_start

    def test_durations_and_phase_sums_are_preserved_exactly(self):
        worker = _worker_trace(origin=5e8)
        worker_durations = {
            record.name: record.duration for record in worker.spans
        }
        parent = Tracer(clock=FakeClock(42.0))
        parent.absorb([record.to_record() for record in worker.spans])
        for name, duration in worker_durations.items():
            assert parent.total_duration(name) == duration

    def test_relative_offsets_within_the_worker_are_rigid(self):
        worker = _worker_trace(origin=7e7)
        inner = worker.spans_named("linear_solve")[0]
        outer = worker.spans_named("ladder")[0]
        lead_in = inner.t_start - outer.t_start

        parent = Tracer(clock=FakeClock(0.0))
        parent.absorb(worker.spans)
        new_inner = parent.spans_named("linear_solve")[0]
        new_outer = parent.spans_named("ladder")[0]
        assert new_inner.t_start - new_outer.t_start == lead_in

    def test_rebase_false_keeps_raw_timestamps(self):
        worker = _worker_trace(origin=1e6)
        parent = Tracer(clock=FakeClock(0.0))
        parent.absorb(
            [record.to_record() for record in worker.spans], rebase=False
        )
        assert parent.spans_named("ladder")[0].t_start == 1e6

    def test_empty_absorb_still_merges_counters(self):
        parent = Tracer(clock=FakeClock(0.0))
        parent.absorb([], counters={"ode_steps": 3})
        assert parent.counters["ode_steps"] == 3
        assert parent.spans == []


class TestRuntimeMergedTimeline:
    def test_batch_trace_timeline_is_monotone_on_one_clock(self):
        """Every absorbed worker span lands inside the runtime_batch
        window on the parent clock (real perf_counter, in-process
        workers): no span may start before the batch or end after it."""
        tracer = Tracer()
        runtime = Runtime(workers=1, retry=RetryPolicy(max_attempts=1), seed=0)
        requests = [
            SolveRequest(
                request_id=f"req-{index}",
                problem=ProblemSpec.burgers(grid_n=2, reynolds=1.0, seed=index),
                analog_time_limit=5.0,
            )
            for index in range(2)
        ]
        result = runtime.run_batch(requests, tracer=tracer)
        assert result.completed + result.failed == 2
        batch = tracer.spans_named("runtime_batch")[0]
        assert tracer.spans, "expected absorbed worker spans"
        eps = 1e-9
        for record in tracer.spans:
            assert record.t_start >= batch.t_start - eps, record.name
            assert record.t_end <= batch.t_end + eps, record.name
        # And the linear_solve sum is a sane, strictly positive number
        # (what the bench layer reads).
        assert tracer.total_duration("linear_solve") > 0.0
        assert np.isfinite(tracer.total_duration("linear_solve"))
