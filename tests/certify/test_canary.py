"""Canary probes: known-answer solves as a leading board-health signal.

Clean silicon and hard-drifted silicon must land on opposite sides of
the canary threshold deterministically, sweeps must condemn only the
drifted boards, and probing must never consume a traffic seed stream
(the observer property the bitwise guarantees lean on).
"""

import numpy as np

from repro.analog.health import DegradationModel
from repro.certify import CertifyPolicy, canary_reference, probe_board, run_canary_sweep
from repro.certify.canary import CANARY_PROBE_REPEATS
from repro.fleet import AnalogFleet, FleetConfig

HOT = DegradationModel(offset_drift_sigma=1.0, seed=7)


def _fleet(boards=2, drifted=(1,)):
    config = FleetConfig(boards=boards, board_models={b: HOT for b in drifted})
    return AnalogFleet(config=config, seed=0)


class TestCanaryReference:
    def test_reference_roots_are_true_roots(self):
        system, guess, roots = canary_reference()
        assert roots.shape[0] >= 1
        for root in roots:
            assert np.linalg.norm(system.residual(root)) < 1e-8
        assert guess.shape == (2,)

    def test_reference_is_cached(self):
        assert canary_reference() is canary_reference()


class TestProbeBoard:
    def test_clean_board_passes(self):
        fleet = _fleet()
        result = probe_board(fleet.boards[0], runtime_seed=0, probe_index=0)
        assert result.passed
        assert result.error <= result.threshold
        assert result.board_id == 0

    def test_drifted_board_fails(self):
        fleet = _fleet()
        result = probe_board(fleet.boards[1], runtime_seed=0, probe_index=0)
        assert not result.passed
        assert result.error > result.threshold

    def test_probe_is_deterministic(self):
        a = probe_board(_fleet().boards[1], runtime_seed=0, probe_index=0)
        b = probe_board(_fleet().boards[1], runtime_seed=0, probe_index=0)
        assert a == b

    def test_threshold_comes_from_policy(self):
        board = _fleet().boards[1]
        default = probe_board(board, runtime_seed=0, probe_index=0)
        lenient = probe_board(
            board,
            runtime_seed=0,
            probe_index=0,
            policy=CertifyPolicy(canary_threshold=100.0),
        )
        assert not default.passed
        assert lenient.passed
        assert lenient.error == default.error  # same silicon, same probes


class TestCanarySweep:
    def test_sweep_condemns_only_the_drifted_board(self):
        fleet = _fleet(boards=3, drifted=(1,))
        events = run_canary_sweep(fleet, runtime_seed=0, probe_index=0)
        assert events["canary_probes"] == 3
        assert events["canary_failures"] == 1
        assert events["canary_quarantines"] == 1
        assert events["boards_condemned"] == 1
        assert fleet.boards[1].quarantined
        assert "canary error" in fleet.boards[1].quarantine_reason
        assert fleet.boards[0].eligible and fleet.boards[2].eligible

    def test_sweep_skips_ineligible_boards(self):
        fleet = _fleet(boards=2, drifted=(1,))
        fleet.boards[1].quarantined = True
        events = run_canary_sweep(fleet, runtime_seed=0, probe_index=0)
        assert events.get("canary_probes", 0) == 1  # only board 0
        assert events.get("canary_failures", 0) == 0

    def test_all_clean_sweep_is_a_no_op(self):
        fleet = _fleet(boards=2, drifted=())
        events = run_canary_sweep(fleet, runtime_seed=0, probe_index=0)
        assert events == {"canary_probes": 2}
        assert all(board.eligible for board in fleet.boards)

    def test_probing_leaves_traffic_streams_untouched(self):
        # The observer property: a board's die/degradation streams for
        # any *request* id are pure functions of (seed, id, attempt), so
        # running a probe cannot shift what traffic would see.
        fleet = _fleet(boards=1, drifted=())
        board = fleet.boards[0]
        before = (
            board.die_seed(0, "traffic-0001", 0),
            board.degradation_seed(0, "traffic-0001", 0),
        )
        probe_board(board, runtime_seed=0, probe_index=0)
        after = (
            board.die_seed(0, "traffic-0001", 0),
            board.degradation_seed(0, "traffic-0001", 0),
        )
        assert before == after
        assert board.observations == 0  # probes do not count as traffic

    def test_sub_probe_count_is_odd(self):
        # The median-of-N verdict needs an odd N to avoid averaging.
        assert CANARY_PROBE_REPEATS % 2 == 1
