"""Scaling behaviour on sparse (Burgers) systems."""

import numpy as np
import pytest

from repro.analog.scaling import ScaledSystem
from repro.linalg.sparse import CsrMatrix
from repro.nonlinear.systems import check_jacobian
from repro.pde.burgers import random_burgers_system


class TestScaledBurgers:
    def test_jacobian_stays_sparse(self):
        system, guess = random_burgers_system(3, 1.0, np.random.default_rng(0))
        scaled = ScaledSystem(system, 3.0)
        jac = scaled.jacobian(guess / 3.0)
        assert isinstance(jac, CsrMatrix)
        assert jac.nnz == system.jacobian(guess).nnz

    def test_jacobian_values_scale_correctly(self):
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(1))
        scale = 2.5
        scaled = ScaledSystem(system, scale)
        w = guess / scale
        np.testing.assert_allclose(
            scaled.jacobian(w).to_dense(),
            system.jacobian(guess).to_dense() / scale,
            atol=1e-12,
        )

    def test_scaled_jacobian_consistent_with_residual(self):
        system, guess = random_burgers_system(2, 2.0, np.random.default_rng(2))
        scaled = ScaledSystem(system, 3.3)
        check_jacobian(scaled, guess / 3.3, rtol=1e-4, atol=1e-5)

    def test_quadratic_invariance_of_nonlinear_terms(self):
        # Section 5.3's proportionality rule: scaling preserves the
        # *relative* size of the quadratic terms. Doubling the scale
        # must not change G at matched scaled coordinates beyond the
        # linear/constant-term shrinkage — i.e. the quadratic part of
        # G is scale-invariant. We verify via the second difference.
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(3))

        def quadratic_part(scaled_system, w, h=1e-3):
            e = np.zeros_like(w)
            e[0] = h
            plus = scaled_system.residual(w + e)
            minus = scaled_system.residual(w - e)
            center = scaled_system.residual(w)
            return (plus - 2.0 * center + minus) / h**2

        w = guess / 4.0
        q_small = quadratic_part(ScaledSystem(system, 2.0), w)
        q_large = quadratic_part(ScaledSystem(system, 8.0), w)
        np.testing.assert_allclose(q_small, q_large, atol=1e-4)
