"""The Bratu problem: a transcendental nonlinearity (Section 7).

Section 7 of the paper: "Occasionally, nonlinear PDEs have
transcendental nonlinear functions such as e^u and sin(u). These
transcendental equations would require analog nonlinear function
generators. Transcendental nonlinear functions cause problems for
analog accelerators because there is no clear way to scale problem
variables to fit in the analog accelerator dynamic range."

The canonical example is the Bratu (solid-fuel ignition) problem

    -Lap(u) = lam * exp(u),   u = 0 on the boundary.

It is also a classic *fold* benchmark: for ``lam`` below a critical
value there are two solutions (a stable lower branch and an unstable
upper branch), which merge and vanish at the fold — exactly the
solution-multiplicity behaviour Section 3 motivates homotopy methods
with. In 1-D on the unit interval the fold sits at ``lam* ~ 3.5138``;
in 2-D on the unit square at ``lam* ~ 6.808``.

The exponential is pluggable (``exp_function``) so the analog
function-generator model of
:mod:`repro.analog.function_generator` can stand in for the exact
``exp`` — reproducing the lookup-table approach of the related work
[18, 19] ("digital provides continuous-time lookup for nonlinear
functions", Table 5).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.linalg.sparse import CsrMatrix, csr_from_triplets
from repro.nonlinear.systems import NonlinearSystem
from repro.pde.grid import Grid2D

__all__ = ["BratuProblem1D", "BratuProblem2D", "BRATU_1D_CRITICAL", "BRATU_2D_CRITICAL"]

# Critical (fold) parameters of the continuous problems.
BRATU_1D_CRITICAL = 3.513830719
BRATU_2D_CRITICAL = 6.808124423

ExpPair = Tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray], np.ndarray]]


def _default_exp_pair() -> ExpPair:
    return (np.exp, np.exp)


class BratuProblem1D(NonlinearSystem):
    """1-D Bratu problem on the unit interval, ``n`` interior nodes.

    ``exp_pair`` supplies ``(exp, exp_derivative)`` — exact by default;
    pass a lookup-table pair to model analog function generation.
    """

    def __init__(
        self,
        num_nodes: int,
        lam: float,
        exp_pair: Optional[ExpPair] = None,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if lam < 0.0:
            raise ValueError("lambda must be nonnegative")
        self.dimension = num_nodes
        self.lam = float(lam)
        self.spacing = 1.0 / (num_nodes + 1)
        self._exp, self._dexp = exp_pair or _default_exp_pair()

    def residual(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        padded = np.concatenate([[0.0], u, [0.0]])
        lap = (padded[:-2] - 2.0 * padded[1:-1] + padded[2:]) / self.spacing**2
        return -lap - self.lam * self._exp(u)

    def jacobian(self, u: np.ndarray) -> CsrMatrix:
        u = self._validate(u)
        n = self.dimension
        coeff = 1.0 / self.spacing**2
        idx = np.arange(n)
        rows = [idx]
        cols = [idx]
        vals = [2.0 * coeff - self.lam * self._dexp(u)]
        if n > 1:
            rows += [idx[:-1], idx[1:]]
            cols += [idx[:-1] + 1, idx[1:] - 1]
            vals += [np.full(n - 1, -coeff), np.full(n - 1, -coeff)]
        return csr_from_triplets(
            n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
        )

    def lower_branch_guess(self) -> np.ndarray:
        """Zero: always in the lower (stable) solution's basin."""
        return np.zeros(self.dimension)

    def upper_branch_guess(self, amplitude: float = 5.0) -> np.ndarray:
        """A tall bump, in the upper (unstable) solution's basin for
        sub-critical lambda."""
        xs = (np.arange(self.dimension) + 1) * self.spacing
        return amplitude * np.sin(np.pi * xs)


class BratuProblem2D(NonlinearSystem):
    """2-D Bratu problem on the unit square with a five-point Laplacian."""

    def __init__(
        self,
        grid_n: int,
        lam: float,
        exp_pair: Optional[ExpPair] = None,
    ):
        if grid_n <= 0:
            raise ValueError("grid_n must be positive")
        if lam < 0.0:
            raise ValueError("lambda must be nonnegative")
        self.grid = Grid2D.square(grid_n, spacing=1.0 / (grid_n + 1))
        self.dimension = self.grid.num_nodes
        self.lam = float(lam)
        self._exp, self._dexp = exp_pair or _default_exp_pair()

    def residual(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        field = self.grid.field(u)
        padded = np.pad(field, 1)
        h2 = self.grid.dx**2
        lap = (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
            - 4.0 * padded[1:-1, 1:-1]
        ) / h2
        return self.grid.flatten(-lap - self.lam * self._exp(field))

    def jacobian(self, u: np.ndarray) -> CsrMatrix:
        u = self._validate(u)
        grid = self.grid
        n = grid.num_nodes
        nx, ny = grid.nx, grid.ny
        coeff = 1.0 / grid.dx**2
        jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
        k = (jj * nx + ii).ravel()
        east = (ii < nx - 1).ravel()
        west = (ii > 0).ravel()
        north = (jj < ny - 1).ravel()
        south = (jj > 0).ravel()
        rows = [k, k[east], k[west], k[north], k[south]]
        cols = [k, k[east] + 1, k[west] - 1, k[north] + nx, k[south] - nx]
        vals = [
            4.0 * coeff - self.lam * self._dexp(u),
            np.full(int(east.sum()), -coeff),
            np.full(int(west.sum()), -coeff),
            np.full(int(north.sum()), -coeff),
            np.full(int(south.sum()), -coeff),
        ]
        return csr_from_triplets(
            n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
        )

    def lower_branch_guess(self) -> np.ndarray:
        return np.zeros(self.dimension)
