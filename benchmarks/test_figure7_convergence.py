"""Benchmark: Figure 7 — time to convergence, digital vs analog.

Regenerates the grid-size x Reynolds sweep at equal accuracy and checks
the figure's shape: digital time grows with problem size, analog time
stays flat, the crossover falls around the 4x4 grid, and the 16x16
accelerator wins by roughly two orders of magnitude.
"""

import numpy as np

from repro.experiments.figure7 import run_figure7

GRID_SIZES = (2, 4, 8, 16)
REYNOLDS = (0.1, 1.0)


def test_figure7(benchmark):
    result = benchmark.pedantic(
        run_figure7,
        kwargs={"grid_sizes": GRID_SIZES, "reynolds_values": REYNOLDS, "trials": 1},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())

    # All cells present at these moderate Reynolds numbers.
    assert len(result.rows()) == len(GRID_SIZES) * len(REYNOLDS)

    digital = {n: result.cell(n, 1.0)["digital time (s)"] for n in GRID_SIZES}
    analog = {n: result.cell(n, 1.0)["analog time (s)"] for n in GRID_SIZES}

    # Digital grows with each quadrupling of the problem...
    assert digital[16] > digital[8] > digital[4]
    assert digital[16] > 50.0 * digital[2]
    # ...while analog stays roughly constant (within 3x across sizes).
    times = np.array(list(analog.values()))
    assert times.max() / times.min() < 3.0

    # Crossover around 4x4: digital still competitive at 4x4...
    assert digital[4] < 10.0 * analog[4]
    # ...digital faster (or comparable) at 2x2, exactly the paper's
    # small-problem picture.
    assert digital[2] < analog[2] * 3.0

    # "the 16x16 analog accelerator ... may have 100x faster solution
    # time compared to a purely digital approach."
    ratio16 = digital[16] / analog[16]
    assert 30.0 < ratio16 < 1000.0


def test_figure7_high_reynolds_harder(benchmark):
    result = benchmark.pedantic(
        run_figure7,
        kwargs={"grid_sizes": (8,), "reynolds_values": (0.01, 2.0), "trials": 2},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    easy = result.cell(8, 0.01)
    hard = result.cell(8, 2.0)
    if easy is None or hard is None:
        # High-Re random instances can all fail to have solutions, the
        # paper's own sparse-data caveat; nothing to compare then.
        return
    assert hard["digital time (s)"] >= easy["digital time (s)"]
