"""Table 4: area and power for scaled-up analog accelerators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analog.area_power import scaled_accelerator_table
from repro.reporting import ascii_table

__all__ = ["Table4Result", "run_table4", "PAPER_TABLE4"]

# Paper Table 4: solver size -> (chip area mm^2, power mW).
PAPER_TABLE4: Dict[int, Tuple[float, float]] = {
    1: (1.38, 1.53),
    2: (5.50, 6.10),
    4: (22.02, 24.42),
    8: (88.06, 97.66),
    16: (352.36, 390.66),
}


@dataclass
class Table4Result:
    rows_data: List[dict]

    def rows(self) -> List[dict]:
        return self.rows_data

    def render(self) -> str:
        return ascii_table(self.rows_data)

    def max_relative_deviation(self) -> float:
        """Largest relative deviation from the paper's numbers."""
        worst = 0.0
        for row in self.rows_data:
            n = int(row["solver size"].split(" ")[0])
            paper_area, paper_power = PAPER_TABLE4[n]
            worst = max(
                worst,
                abs(row["chip area (mm^2)"] - paper_area) / paper_area,
                abs(row["power use (mW)"] - paper_power) / paper_power,
            )
        return worst


def run_table4() -> Table4Result:
    rows = scaled_accelerator_table()
    for row in rows:
        n = int(row["solver size"].split(" ")[0])
        paper_area, paper_power = PAPER_TABLE4[n]
        row["paper area (mm^2)"] = paper_area
        row["paper power (mW)"] = paper_power
    return Table4Result(rows_data=rows)
