"""One shard of the solve service: a Runtime with its own journal,
degradation schedule, fault plan, and tracer.

A shard is the service's unit of failure and of observability. Its
:class:`~repro.runtime.runtime.Runtime` is built with
``on_pool_break="fail"`` so a broken worker pool surfaces as
:class:`~repro.service.api.ShardDied` instead of degrading to
in-process execution — on a multi-shard service the right response to
a dead pool is fail-over to a healthy shard, not limping along on the
dead one. Its write-ahead journal (one file per shard, windows
appended) is what makes that fail-over lossless: committed outcomes
are recovered, accepted-but-uncommitted requests are replayed
elsewhere. Its :class:`~repro.trace.Tracer` accumulates every
window's spans and counters, and is merged with its peers at drain
time by :func:`repro.trace.merge_traces`.

Every shard shares the *service* seed: with all random streams keyed
by ``stable_seed(seed, request_id, attempt, ...)``, which shard runs a
request never changes the answer — the shards=1 == shards=4
determinism the test tier pins.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.checkpoint.journal import BatchJournal, JournalReplay, read_journal
from repro.runtime.api import PoolBroken, RetryPolicy, SolveRequest
from repro.runtime.runtime import BatchResult, Runtime
from repro.service.api import ShardDied
from repro.trace.tracer import Tracer

__all__ = ["Shard"]


class Shard:
    """A named Runtime plus the state the service tracks about it."""

    def __init__(
        self,
        name: str,
        seed: int = 0,
        workers: int = 1,
        queue_limit: int = 64,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Any] = None,
        degradation: Optional[Any] = None,
        ladder_kwargs: Optional[Dict[str, Any]] = None,
        journal_path: Optional[Path] = None,
        status: str = "healthy",
        fleet: Optional[Any] = None,
        certify: Optional[Any] = None,
    ):
        self.name = name
        self.status = status  # "healthy" | "dead" | "lifeboat"
        self.busy = False
        self.windows = 0
        self.dispatched = 0
        self.converged = 0
        self.failed = 0
        self.journal_path = Path(journal_path) if journal_path is not None else None
        self._journal = (
            BatchJournal(self.journal_path) if self.journal_path is not None else None
        )
        self.tracer = Tracer(manifest={"experiment": name, "seed": seed})
        self.runtime = Runtime(
            workers=workers,
            queue_limit=queue_limit,
            retry=retry,
            seed=seed,
            faults=faults,
            ladder_kwargs=ladder_kwargs,
            degradation=degradation,
            journal=self._journal,
            on_pool_break="fail",
            fleet=fleet,
            certify=certify,
        )

    @property
    def healthy(self) -> bool:
        return self.status != "dead"

    def run_window(self, requests: Sequence[SolveRequest]) -> BatchResult:
        """Run one window of requests on this shard's runtime.

        Called from an executor thread by the service. A broken pool
        (or anything else escaping the runtime's no-escapes contract)
        marks the shard dead and raises :class:`ShardDied`; the
        service then recovers what the journal committed and fails the
        rest over.
        """
        self.windows += 1
        self.dispatched += len(requests)
        try:
            result = self.runtime.run_batch(list(requests), tracer=self.tracer)
        except PoolBroken as exc:
            self.status = "dead"
            raise ShardDied(f"shard {self.name}: {exc}") from exc
        except Exception as exc:  # defensive: a shard bug is a dead shard
            self.status = "dead"
            raise ShardDied(f"shard {self.name}: {type(exc).__name__}: {exc}") from exc
        self.converged += result.completed
        self.failed += result.failed
        return result

    def recover(self) -> Optional[JournalReplay]:
        """Read back this (dead) shard's journal for fail-over.

        Returns ``None`` when the shard has no journal or the file was
        never written — the caller then replays the whole in-flight
        window from scratch on a healthy shard.
        """
        self.close()
        if self.journal_path is None or not self.journal_path.exists():
            return None
        return read_journal(self.journal_path)

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
