"""Ablation: behavioral vs circuit fidelity of continuous Newton.

DESIGN.md calls out the two simulation fidelities of the analog
engine: *behavioral* solves the inner linear system exactly at every
instant, while *circuit* integrates the actual Figure-1 topology with
the gradient-descent quotient loop as explicit fast dynamics. The
ablation verifies they agree on the answer, that circuit fidelity needs
adequate loop gain, and quantifies the simulation-cost gap that makes
behavioral the default (the paper's own simulated accelerators are
behavioral, Section 6.1).
"""

import numpy as np
import pytest

from repro.nonlinear.continuous_newton import continuous_newton_solve
from repro.nonlinear.systems import CoupledQuadraticSystem


@pytest.fixture(scope="module")
def system():
    return CoupledQuadraticSystem(1.0, 1.0)


def test_fidelities_agree_on_roots(benchmark, system):
    u0 = np.array([1.0, 1.0])

    def run_both():
        behavioral = continuous_newton_solve(system, u0, fidelity="behavioral")
        circuit = continuous_newton_solve(
            system, u0, fidelity="circuit", gain=50.0, time_limit=120.0
        )
        return behavioral, circuit

    behavioral, circuit = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert behavioral.converged and circuit.converged
    np.testing.assert_allclose(circuit.u, behavioral.u, atol=1e-2)


def test_circuit_cost_multiplier(benchmark, system):
    # The circuit model is stiff (two-timescale): it needs far more
    # integration work, which is why behavioral is the default.
    u0 = np.array([1.0, 1.0])

    def run_both():
        behavioral = continuous_newton_solve(system, u0, fidelity="behavioral")
        circuit = continuous_newton_solve(
            system, u0, fidelity="circuit", gain=50.0, time_limit=120.0
        )
        return behavioral, circuit

    behavioral, circuit = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert circuit.solution.rhs_evaluations > 3.0 * behavioral.solution.rhs_evaluations


def test_circuit_gain_is_load_bearing(benchmark, system):
    u0 = np.array([1.0, 1.0])
    good = benchmark.pedantic(
        continuous_newton_solve,
        args=(system, u0),
        kwargs={"fidelity": "circuit", "gain": 50.0, "time_limit": 10.0},
        rounds=1,
        iterations=1,
    )
    starved = continuous_newton_solve(system, u0, fidelity="circuit", gain=0.05, time_limit=10.0)
    assert good.residual_norm < 1e-3
    assert starved.residual_norm > 10.0 * good.residual_norm
