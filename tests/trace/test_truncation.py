"""Trace files vs dying writers: atomic export, torn-tail tolerance."""

import pytest

from repro.cli import main
from repro.trace.exporter import read_trace, write_trace
from repro.trace.tracer import Tracer


def _sample_trace(tmp_path):
    tracer = Tracer(manifest={"command": "test"})
    with tracer.span("outer"):
        with tracer.span("inner", iterations=3):
            pass
    tracer.counter("solves", 2)
    tracer.gauge("residual", 1e-9)
    return write_trace(tracer, tmp_path / "t.jsonl")


class TestAtomicExport:
    def test_no_temp_litter(self, tmp_path):
        _sample_trace(tmp_path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.jsonl"]

    def test_rewrite_replaces_whole_file(self, tmp_path):
        path = _sample_trace(tmp_path)
        first = path.read_text()
        tracer = Tracer(manifest={"command": "second"})
        tracer.counter("other")
        write_trace(tracer, path)
        second = path.read_text()
        assert second != first
        assert not read_trace(path).truncated


class TestTornTail:
    def test_torn_final_line_is_tolerated_and_flagged(self, tmp_path):
        path = _sample_trace(tmp_path)
        text = path.read_text()
        lines = text.splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        trace = read_trace(path)
        assert trace.truncated
        # The complete records before the tear are still trusted.
        assert trace.counters["solves"] == 2
        assert len(trace.spans) == 2

    def test_corruption_before_the_tail_still_raises(self, tmp_path):
        path = _sample_trace(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # mangle an interior record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(path)

    def test_trace_summary_cli_reports_torn_tail(self, tmp_path, capsys):
        path = _sample_trace(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:7])
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out
        assert "torn partial line" in out
        assert "per-phase breakdown" in out  # complete records still summarized

    def test_intact_summary_has_no_warning(self, tmp_path, capsys):
        path = _sample_trace(tmp_path)
        assert main(["trace-summary", str(path)]) == 0
        assert "WARNING" not in capsys.readouterr().out
