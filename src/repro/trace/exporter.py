"""JSON-lines persistence for traces.

File layout (one JSON object per line):

* line 1 — the **run manifest**: ``{"type": "manifest", "schema": 1,
  "repro_version": ..., "created_unix": ..., ...user fields...}``
  where the user fields record what produced the trace (command, grid
  size, Reynolds numbers, seed).
* one ``{"type": "span", ...}`` line per completed span, in completion
  order, with ``id``/``parent`` linkage, ``depth``, monotonic
  ``t_start``/``t_end`` and the attribute dict;
* one ``{"type": "counter", "name": ..., "value": ...}`` line per
  counter and ``{"type": "gauge", ...}`` per gauge, sorted by name.

Everything is stdlib-only. :func:`merge_traces` combines per-worker
trace files from a parallel sweep into one file: span streams are
concatenated (each span gains a ``source`` field naming its shard),
counters are summed, and the merged manifest keeps every shard's
manifest under ``"shards"``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.checkpoint.atomic import atomic_write_text
from repro.trace.tracer import Tracer

__all__ = [
    "SCHEMA_VERSION",
    "TraceFile",
    "build_manifest",
    "write_trace",
    "read_trace",
    "merge_traces",
]

SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def build_manifest(
    *field_maps: Optional[Dict[str, Any]], **fields: Any
) -> Dict[str, Any]:
    """The one place a run manifest is stamped.

    Every manifest-shaped header in this repo — the JSONL trace header,
    the merged-shard header, the bench report's provenance block —
    carries the same base fields (``type``/``schema``/``repro_version``/
    ``created_unix``). Building them in one function means the fields
    cannot drift between writers. Positional dicts are merged in order
    (``None`` entries skipped), then keyword fields; later values win —
    except the ``"type"`` tag, which readers dispatch on and which no
    user field may clobber (a manifest line typed anything else would
    make the whole trace unreadable).
    """
    from repro import __version__

    manifest: Dict[str, Any] = {
        "type": "manifest",
        "schema": SCHEMA_VERSION,
        "repro_version": __version__,
        "created_unix": time.time(),
    }
    for field_map in field_maps:
        if field_map:
            manifest.update(field_map)
    manifest.update(fields)
    manifest["type"] = "manifest"
    return manifest


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars (and other odd ducks) to plain JSON types."""
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar -> native python scalar
        return item()
    if isinstance(value, (set, tuple)):
        return list(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


@dataclass
class TraceFile:
    """A parsed trace: manifest plus raw span/counter/gauge records.

    ``truncated`` flags a torn trailing line — the signature of a
    process killed mid-write. The complete records before it are still
    trustworthy and are returned; tools should surface the flag rather
    than pretend the file is whole.
    """

    manifest: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    truncated: bool = False

    def spans_named(self, name: str) -> List[Dict[str, Any]]:
        return [span for span in self.spans if span.get("name") == name]

    def sum_attr(self, span_name: str, attr: str) -> float:
        """Sum one numeric attribute across all spans of one name."""
        return sum(span.get("attrs", {}).get(attr, 0) for span in self.spans_named(span_name))


def write_trace(
    tracer: Tracer,
    path: PathLike,
    manifest_extra: Optional[Dict[str, Any]] = None,
    check_closed: bool = True,
) -> Path:
    """Export a tracer's records as JSONL; returns the written path.

    The file is written atomically (tmp + fsync + rename): a crash or
    SIGKILL mid-export leaves the previous trace (or no file), never a
    half-written one that a later ``trace-summary`` would choke on.
    """
    if check_closed:
        tracer.check_closed()
    manifest = build_manifest(tracer.manifest, manifest_extra)

    path = Path(path)
    lines = [json.dumps(manifest, default=_json_default)]
    for record in tracer.spans:
        line = dict(record.to_record())
        line["type"] = "span"
        lines.append(json.dumps(line, default=_json_default))
    for name in sorted(tracer.counters):
        lines.append(
            json.dumps(
                {"type": "counter", "name": name, "value": tracer.counters[name]},
                default=_json_default,
            )
        )
    for name in sorted(tracer.gauges):
        lines.append(
            json.dumps(
                {"type": "gauge", "name": name, "value": tracer.gauges[name]},
                default=_json_default,
            )
        )
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def read_trace(path: PathLike) -> TraceFile:
    """Parse a JSONL trace file (as written by :func:`write_trace`).

    A torn *final* line — what a kill mid-append leaves behind — is
    tolerated and reported via ``TraceFile.truncated``; invalid JSON
    anywhere earlier is real corruption and still raises.
    """
    trace = TraceFile()
    lines = [
        (number, line.strip())
        for number, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        )
        if line.strip()
    ]
    for position, (line_number, line) in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if position == len(lines) - 1:
                trace.truncated = True
                break
            raise ValueError(f"{path}:{line_number}: not valid JSON: {exc}") from exc
        kind = record.get("type")
        if kind == "manifest":
            trace.manifest = record
        elif kind == "span":
            trace.spans.append(record)
        elif kind == "counter":
            trace.counters[record["name"]] = (
                trace.counters.get(record["name"], 0) + record["value"]
            )
        elif kind == "gauge":
            trace.gauges[record["name"]] = record["value"]
        else:
            raise ValueError(f"{path}:{line_number}: unknown record type {kind!r}")
    return trace


def merge_traces(paths: Sequence[PathLike], out_path: PathLike) -> TraceFile:
    """Merge per-worker shard traces into one file (counters additive).

    Span ids are renumbered into one namespace (parent links preserved
    shard-locally), each span is tagged with its shard ``source``, and
    the merged manifest carries the shard manifests under ``"shards"``.
    """
    if not paths:
        raise ValueError("need at least one trace file to merge")
    shards = [read_trace(path) for path in paths]
    merged = TraceFile(
        manifest=build_manifest(
            merged_from=len(shards),
            shards=[shard.manifest for shard in shards],
        )
    )
    next_id = 1
    for shard_index, (path, shard) in enumerate(zip(paths, shards)):
        source = shard.manifest.get("experiment", Path(path).name)
        id_map: Dict[int, int] = {}
        for span in shard.spans:
            id_map[span["id"]] = next_id
            next_id += 1
        for span in shard.spans:
            relinked = dict(span)
            relinked["id"] = id_map[span["id"]]
            parent = span.get("parent")
            relinked["parent"] = id_map.get(parent) if parent is not None else None
            relinked["source"] = source
            merged.spans.append(relinked)
        for name, value in shard.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        for name, value in shard.gauges.items():
            merged.gauges[name] = value

    lines = [json.dumps(merged.manifest, default=_json_default)]
    for span in merged.spans:
        line = dict(span)
        line["type"] = "span"
        lines.append(json.dumps(line, default=_json_default))
    for name in sorted(merged.counters):
        lines.append(
            json.dumps({"type": "counter", "name": name, "value": merged.counters[name]})
        )
    for name in sorted(merged.gauges):
        lines.append(
            json.dumps({"type": "gauge", "name": name, "value": merged.gauges[name]})
        )
    atomic_write_text(Path(out_path), "\n".join(lines) + "\n")
    return merged
