"""Benchmark: Table 1 — function profile of nonlinear PDE solvers.

Regenerates the paper's workload characterization with the four
instrumented mini-apps and checks its structural claims: equation
solving is a major kernel everywhere, and structured-grid (finite
difference) solvers spend a larger fraction in it than finite-volume /
finite-element ones.
"""

import pytest

from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def table1(request):
    return run_table1(repeats=2)


def test_table1_rows(benchmark):
    result = benchmark.pedantic(run_table1, kwargs={"repeats": 1}, rounds=1, iterations=1)
    print("\n" + result.render())
    assert len(result.rows()) == 4


def test_equation_solving_major_everywhere(benchmark, table1):
    rows = benchmark.pedantic(table1.rows, rounds=1, iterations=1)
    for row in rows:
        assert row["measured kernel time"] > 0.10, row["representative solver"]


def test_structured_grid_fraction_highest(benchmark, table1):
    rows = benchmark.pedantic(table1.rows, rounds=1, iterations=1)
    fractions = {row["representative solver"]: row["measured kernel time"] for row in rows}
    bwaves = fractions["SPEC CPU2006 410.bwaves"]
    assert bwaves == max(fractions.values())
    # FD rows above FV/FE rows, the paper's ordering.
    by_paper_order = [row["measured kernel time"] for row in table1.rows()]
    assert by_paper_order[0] > by_paper_order[2]  # bwaves > cavity (FV)
    assert by_paper_order[0] > by_paper_order[3]  # bwaves > membrane (FE)
    assert by_paper_order[1] > by_paper_order[2]  # Hartmann (FD) > cavity (FV)
