"""Shard-count determinism: shards=1 and shards=4 must agree bitwise.

The service-level mirror of
``tests/verification/test_determinism.py``'s workers=1 == workers=4
batch test. Every shard shares the service seed and all solver
randomness is keyed by ``stable_seed(seed, request_id, attempt, ...)``,
so placement — which shard, which window — must be invisible in every
outcome field and every solver-side counter. Only ``service_*``
bookkeeping (window counts, admission totals) may differ in principle;
here even those agree, but the contract we pin is the solver side.
"""

import numpy as np

from repro.runtime.api import ProblemSpec, RetryPolicy, SolveRequest
from repro.service import serve_requests


def _run(shards):
    requests = [
        SolveRequest(
            f"det-{i}",
            (
                ProblemSpec.burgers(2, 2.0, seed=40 + i)
                if i % 2
                else ProblemSpec.quadratic(rhs0=1.0 + 0.2 * i)
            ),
            analog_time_limit=1e-3,
        )
        for i in range(8)
    ]
    return serve_requests(
        requests,
        shards=shards,
        workers_per_shard=1,
        batch_window=2,
        seed=99,
        retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
    )


def _solver_counters(counters):
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith("service_")
    }


class TestShardCountDeterminism:
    def test_outcomes_bitwise_identical_across_shard_counts(self):
        single = _run(shards=1)
        sharded = _run(shards=4)
        assert [r.request_id for r in single.records] == [
            r.request_id for r in sharded.records
        ]
        for a, b in zip(single.records, sharded.records):
            oa, ob = a.outcome, b.outcome
            assert (oa.status, oa.rung, oa.attempts, oa.attempt_history) == (
                ob.status,
                ob.rung,
                ob.attempts,
                ob.attempt_history,
            )
            assert oa.residual_norm == ob.residual_norm  # bitwise, not approx
            assert np.array_equal(oa.solution, ob.solution)

    def test_reconciled_counters_identical_across_shard_counts(self):
        single = _run(shards=1)
        sharded = _run(shards=4)
        # The load-bearing solver counters, named explicitly so a
        # failure says which one moved.
        for key in ("runtime_attempts", "requests_completed", "ladder_fallbacks"):
            assert _solver_counters(single.counters).get(key, 0) == _solver_counters(
                sharded.counters
            ).get(key, 0), key
        # And the full reconciled solver-side dict, bitwise.
        assert _solver_counters(single.counters) == _solver_counters(sharded.counters)
