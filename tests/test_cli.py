"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "figure9" in out


def test_table4_prints_rows(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "16 x 16" in out
    assert "352" in out


def test_table5_prints_matrix(capsys):
    assert main(["table5"]) == 0
    assert "this work" in capsys.readouterr().out


def test_figure2_small(capsys):
    assert main(["figure2", "--resolution", "24"]) == 0
    assert "contiguity" in capsys.readouterr().out


def test_figure6_small(capsys):
    assert main(["figure6", "--trials", "5"]) == 0
    out = capsys.readouterr().out
    assert "total RMS error" in out


def test_figure7_tiny(capsys):
    assert main(["figure7", "--grids", "2", "--reynolds", "1.0", "--trials", "1"]) == 0
    assert "2x2" in capsys.readouterr().out


def test_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["figure99"])
