"""Mixed-precision iterative refinement (the paper's digital sibling).

Section 3.3 places the hybrid method next to "digital approximation
approaches [where] numerical methods can first use single-precision
floating point numbers with cheaper operations ... before finishing off
with double precision" [4, 5, 8, 28], and notes the analog technique
"can extend those methods due to its fundamental energy efficiency in
the low bit precision regime."

This module implements that digital baseline: LU-factor the matrix in
float32 (the cheap low-precision pass — the role the analog accelerator
plays in the hybrid method), then iteratively refine in float64 until
the residual reaches double-precision levels. The structural identity
with the hybrid pipeline — *approximate seed, exact polish* — is what
the tests and the ablation bench exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.linalg.dense import LuFactorization, SingularMatrixError, lu_factor, lu_solve

__all__ = ["RefinementResult", "mixed_precision_solve"]


@dataclass
class RefinementResult:
    """Outcome of a mixed-precision solve."""

    x: np.ndarray
    converged: bool
    refinement_steps: int
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    low_precision_residual: float = 0.0
    """Residual of the raw float32 solve — the 'analog-grade' seed
    quality before any refinement."""


def _lu_factor_float32(a: np.ndarray) -> LuFactorization:
    """Partial-pivoted LU carried out in single precision.

    The factorization arithmetic runs in float32 (the cheap pass); the
    packed factors are then used as a float64 preconditioner by the
    refinement loop.
    """
    low = np.asarray(a, dtype=np.float32)
    fact32 = lu_factor(low.astype(np.float32, copy=True).astype(float))
    # Round the packed factors to float32 storage, the precision a
    # single-precision pipeline would have kept.
    return LuFactorization(
        lu=fact32.lu.astype(np.float32).astype(float),
        piv=fact32.piv,
        num_swaps=fact32.num_swaps,
    )


def mixed_precision_solve(
    a: np.ndarray,
    b: np.ndarray,
    tol: float = 1e-14,
    max_refinements: int = 30,
) -> RefinementResult:
    """Solve ``A x = b``: float32 factorization + float64 refinement.

    Classic iterative refinement: with ``M ~ A`` the low-precision
    factorization, iterate ``x <- x + M^{-1}(b - A x)`` with the
    residual computed in full precision. Converges whenever the
    float32 factorization is accurate enough to contract the error —
    the same requirement the hybrid method puts on its analog seed
    (inside the basin, Section 6.2).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    if b.shape != (a.shape[0],):
        raise ValueError(f"rhs must have shape ({a.shape[0]},)")
    if tol <= 0.0:
        raise ValueError("tol must be positive")

    try:
        fact = _lu_factor_float32(a)
    except SingularMatrixError:
        return RefinementResult(
            x=np.zeros_like(b),
            converged=False,
            refinement_steps=0,
            residual_norm=float(np.linalg.norm(b)),
            residual_history=[float(np.linalg.norm(b))],
        )

    # The low-precision seed.
    x = lu_solve(fact, b)
    seed_residual = float(np.linalg.norm(b - a @ x))
    threshold = tol * max(float(np.linalg.norm(b)), 1e-30)
    history = [seed_residual]
    if seed_residual <= threshold:
        return RefinementResult(
            x=x,
            converged=True,
            refinement_steps=0,
            residual_norm=seed_residual,
            residual_history=history,
            low_precision_residual=seed_residual,
        )

    for step in range(1, max_refinements + 1):
        residual = b - a @ x  # full float64 residual
        correction = lu_solve(fact, residual)
        x = x + correction
        norm = float(np.linalg.norm(b - a @ x))
        history.append(norm)
        if norm <= threshold:
            return RefinementResult(
                x=x,
                converged=True,
                refinement_steps=step,
                residual_norm=norm,
                residual_history=history,
                low_precision_residual=seed_residual,
            )
        if len(history) > 2 and norm >= history[-2]:
            break  # stagnated: float32 factor too weak to contract
    return RefinementResult(
        x=x,
        converged=False,
        refinement_steps=len(history) - 1,
        residual_norm=history[-1],
        residual_history=history,
        low_precision_residual=seed_residual,
    )
