"""A 1-D semilinear reaction-diffusion problem.

Section 3.1 of the paper motivates the coupled quadratic system of
Equation 2 as arising "from solving a one-dimensional semilinear PDE
problem on two grid points. The nonlinear term where the variables are
squared indicate for example a reaction process." This module provides
that PDE for arbitrary grid sizes:

    -D u'' + u^2 + u = f(x),   u(0) = left,  u(L) = right

discretized with second-order central differences. On two grid points
with unit spacing and the paper's normalization, the stencil reduces to
a system with the same quadratic-plus-linear-plus-coupling structure as
Equation 2, which the tests verify.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.sparse import CooBuilder, CsrMatrix
from repro.nonlinear.systems import NonlinearSystem

__all__ = ["ReactionDiffusion1D"]


class ReactionDiffusion1D(NonlinearSystem):
    """Semilinear reaction-diffusion boundary value problem in 1-D.

    The residual at interior node ``i`` (spacing ``h``):

        F_i = -D (u_{i-1} - 2 u_i + u_{i+1}) / h^2 + u_i^2 + u_i - f_i

    with Dirichlet values ``left`` and ``right`` substituted for the
    ghost neighbours of the first and last nodes.
    """

    def __init__(
        self,
        num_nodes: int,
        diffusion: float = 1.0,
        forcing: Optional[np.ndarray] = None,
        left: float = 0.0,
        right: float = 0.0,
        spacing: float = 1.0,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if diffusion < 0.0:
            raise ValueError("diffusion must be nonnegative")
        if spacing <= 0.0:
            raise ValueError("spacing must be positive")
        self.dimension = num_nodes
        self.diffusion = float(diffusion)
        self.spacing = float(spacing)
        self.left = float(left)
        self.right = float(right)
        if forcing is None:
            self.forcing = np.zeros(num_nodes)
        else:
            self.forcing = np.asarray(forcing, dtype=float)
            if self.forcing.shape != (num_nodes,):
                raise ValueError(f"forcing must have shape ({num_nodes},)")

    def _padded(self, u: np.ndarray) -> np.ndarray:
        return np.concatenate([[self.left], u, [self.right]])

    def residual(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        padded = self._padded(u)
        lap = (padded[:-2] - 2.0 * padded[1:-1] + padded[2:]) / self.spacing**2
        return -self.diffusion * lap + u**2 + u - self.forcing

    def jacobian(self, u: np.ndarray) -> CsrMatrix:
        u = self._validate(u)
        n = self.dimension
        coeff = self.diffusion / self.spacing**2
        builder = CooBuilder(n, n)
        idx = np.arange(n)
        builder.add_many(idx, idx, 2.0 * coeff + 2.0 * u + 1.0)
        if n > 1:
            builder.add_many(idx[:-1], idx[:-1] + 1, np.full(n - 1, -coeff))
            builder.add_many(idx[1:], idx[1:] - 1, np.full(n - 1, -coeff))
        return builder.to_csr()

    def with_forcing_for_solution(self, u_target: np.ndarray) -> "ReactionDiffusion1D":
        """Manufactured-solution helper: returns a copy whose forcing
        makes ``u_target`` an exact root (used by convergence tests)."""
        u_target = np.asarray(u_target, dtype=float)
        zero_forced = ReactionDiffusion1D(
            num_nodes=self.dimension,
            diffusion=self.diffusion,
            forcing=None,
            left=self.left,
            right=self.right,
            spacing=self.spacing,
        )
        return ReactionDiffusion1D(
            num_nodes=self.dimension,
            diffusion=self.diffusion,
            forcing=zero_forced.residual(u_target),
            left=self.left,
            right=self.right,
            spacing=self.spacing,
        )
