"""Tests for the transient visualization helpers."""

import numpy as np
import pytest

from repro.analog.visualize import render_scope, sparkline
from repro.ode.solution import OdeSolution


class TestSparkline:
    def test_fixed_width(self):
        line = sparkline(np.sin(np.linspace(0, 6, 200)), width=40)
        assert len(line) == 40

    def test_monotone_ramp_is_monotone(self):
        line = sparkline(np.linspace(0.0, 1.0, 100), width=20)
        levels = [ord(c) for c in line]
        assert all(b >= a for a, b in zip(levels, levels[1:]))

    def test_constant_signal_is_flat(self):
        line = sparkline(np.full(50, 2.5), width=10)
        assert len(set(line)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([], width=10)
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestRenderScope:
    def make_solution(self):
        ts = np.linspace(0.0, 5.0, 30)
        ys = np.column_stack([np.exp(-ts), np.sin(ts)])
        return OdeSolution(ts=ts, ys=ys, settled=True, settle_time=5.0)

    def test_renders_all_default_channels(self):
        panel = render_scope(self.make_solution(), width=30)
        lines = panel.splitlines()
        assert len(lines) == 3  # header + 2 channels
        assert "settled" in lines[0]
        assert "ch0" in lines[1]

    def test_custom_labels_and_channels(self):
        panel = render_scope(self.make_solution(), channels=[1], labels=["v(t)"], width=20)
        assert "v(t)" in panel
        assert "ch0" not in panel

    def test_final_value_annotated(self):
        panel = render_scope(self.make_solution(), width=20)
        assert f"{np.exp(-5.0):+.4f}" in panel

    def test_validation(self):
        solution = self.make_solution()
        with pytest.raises(ValueError):
            render_scope(solution, channels=[5])
        with pytest.raises(ValueError):
            render_scope(solution, channels=[0, 1], labels=["only-one"])

    def test_integrates_with_recorded_accelerator_run(self):
        from repro.analog.engine import AnalogAccelerator
        from repro.nonlinear.systems import CoupledQuadraticSystem

        result = AnalogAccelerator(seed=0).solve(
            CoupledQuadraticSystem(1.0, 1.0),
            initial_guess=np.array([1.0, 1.0]),
            record_trajectory=True,
        )
        panel = render_scope(result.trajectory, labels=["rho0", "rho1"], channels=[0, 1])
        assert "rho0" in panel and "rho1" in panel
