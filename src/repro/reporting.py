"""Rendering experiment results as the paper's tables and series.

Every experiment driver in :mod:`repro.experiments` returns structured
rows; :func:`ascii_table` prints them in the same layout as the paper's
tables, and :class:`Comparison` records paper-vs-measured pairs for
EXPERIMENTS.md. :func:`render_kernel_stats` summarizes the inner
linear-solve accounting (solves, inner iterations, preconditioner
builds/reuse) that the :class:`~repro.linalg.kernel.LinearKernel` layer
records for each experiment run — the counts the CPU/GPU cost models
charge for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.linalg.kernel import LinearSolverStats

__all__ = ["ascii_table", "Comparison", "render_comparisons", "render_kernel_stats"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def ascii_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as a fixed-width ASCII table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[idx]) for row in cells)) for idx, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(width) for col, width in zip(columns, widths))
    rule = "-+-".join("-" * width for width in widths)
    body = [" | ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in cells]
    return "\n".join([header, rule, *body])


def render_kernel_stats(stats: Optional["LinearSolverStats"], label: str = "linear kernel") -> str:
    """One-table summary of a run's inner linear-solve accounting.

    Returns an empty string for ``None`` or untouched stats so callers
    can unconditionally append it to a render.
    """
    if stats is None or stats.solves == 0:
        return ""
    table = ascii_table([stats.as_row()])
    return f"{label}:\n{table}"


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point for EXPERIMENTS.md."""

    experiment: str
    quantity: str
    paper_value: str
    measured_value: str
    holds: bool
    note: str = ""


def render_comparisons(comparisons: Sequence[Comparison]) -> str:
    rows = [
        {
            "experiment": c.experiment,
            "quantity": c.quantity,
            "paper": c.paper_value,
            "measured": c.measured_value,
            "shape holds": "yes" if c.holds else "NO",
            "note": c.note,
        }
        for c in comparisons
    ]
    return ascii_table(rows)
