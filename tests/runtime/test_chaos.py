"""Chaos suite: injected faults must end in structured outcomes.

Every scenario seeds a :class:`repro.runtime.FaultInjector`, runs a
batch, and asserts the runtime's core guarantee — each request ends in
exactly one terminal :class:`~repro.runtime.SolveOutcome` with the
correct degradation-ladder rung and fault history recorded; never a
raised exception, never a hang. Each fault kind has a scenario:

* ``analog_spike`` — silent seed corruption pushes the ladder past the
  hybrid rung (down to homotopy) within a single attempt;
* ``solver_hang`` — a bounded stall trips the cooperative deadline, is
  accounted a ``timeout`` attempt, and the retry converges;
* ``worker_crash`` — in pooled mode a real ``os._exit`` mid-batch
  (kill-the-worker): the broken pool degrades to in-process execution,
  the attempt is retried, the batch completes, and the crash survives
  into the trace manifest.

Everything is explicitly seeded (no reliance on pytest ordering or
collection-time randomness), so a failure replays byte-for-byte with
``pytest tests/runtime/test_chaos.py -k <scenario>``.
"""

import numpy as np
import pytest

from repro.runtime import (
    FaultInjector,
    FaultSpec,
    ProblemSpec,
    RetryPolicy,
    Runtime,
    SolveRequest,
    TERMINAL_STATUSES,
)
from repro.trace.tracer import Tracer

pytestmark = pytest.mark.chaos

# Finite but overflow-scale: squaring it in the Burgers advection term
# produces inf, so the corrupted seed defeats the undamped polish (and
# the damped recovery that restarts from it) deterministically,
# regardless of which direction the noise draw points.
OVERFLOW_SPIKE = 1e300


def _quadratic_requests(count, prefix="q"):
    # analog_time_limit bounds the *simulated* settle: an unlucky die
    # sample can make the quadratic's analog stage arbitrarily slow in
    # wall-clock at the 60 s default, and chaos tests must never be the
    # thing that hangs.
    return [
        SolveRequest(
            f"{prefix}-{i}",
            ProblemSpec.quadratic(rhs0=1.0 + 0.1 * i),
            analog_time_limit=1e-3,
        )
        for i in range(count)
    ]


class TestAnalogSpike:
    def test_corrupted_seed_degrades_to_homotopy(self):
        """A silently corrupted analog result (converged flag intact,
        solution blasted) must fail the hybrid rung, fail the damped
        recovery seeded from it, and be rescued by homotopy — with the
        fault and the full ladder path on the outcome."""
        faults = FaultInjector(
            specs=(
                FaultSpec(
                    kind="analog_spike",
                    request_id="s-0",
                    attempt=0,
                    magnitude=OVERFLOW_SPIKE,
                ),
            )
        )
        tracer = Tracer()
        runtime = Runtime(seed=5, faults=faults, retry=RetryPolicy(max_attempts=1))
        with np.errstate(all="ignore"):
            result = runtime.run_batch(
                [SolveRequest("s-0", ProblemSpec.burgers(2, 2.0, seed=7))],
                tracer=tracer,
            )
        outcome = result.outcomes[0]
        assert outcome.status == "converged"
        assert outcome.rung == "homotopy"
        assert outcome.rungs_tried == ("hybrid", "damped_newton", "homotopy")
        assert "analog_spike" in outcome.faults
        assert tracer.counters["ladder_fallbacks"] == 2
        assert tracer.counters["runtime_faults"] >= 1
        tracer.check_closed()

    def test_default_magnitude_spike_is_still_recorded(self):
        """Even when the polish survives a milder spike, the fault is
        on the record and the outcome is terminal."""
        faults = FaultInjector(
            specs=(FaultSpec(kind="analog_spike", request_id="s-0", attempt=0),)
        )
        runtime = Runtime(seed=5, faults=faults, retry=RetryPolicy(max_attempts=2))
        with np.errstate(all="ignore"):
            result = runtime.run_batch(
                [SolveRequest("s-0", ProblemSpec.burgers(2, 2.0, seed=7))]
            )
        outcome = result.outcomes[0]
        assert outcome.status in TERMINAL_STATUSES
        assert "analog_spike" in outcome.faults


class TestSolverHang:
    def test_bounded_hang_times_out_then_retry_converges(self):
        """A 0.6 s stall against a 0.3 s deadline: attempt 0 must be
        accounted a timeout (cooperatively — the stall is shorter than
        the parent watchdog's grace), and attempt 1, injected-fault
        free, converges."""
        faults = FaultInjector(
            specs=(
                FaultSpec(
                    kind="solver_hang", request_id="h-0", attempt=0, magnitude=0.6
                ),
            )
        )
        tracer = Tracer()
        runtime = Runtime(
            seed=3,
            faults=faults,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        result = runtime.run_batch(
            [
                SolveRequest(
                    "h-0",
                    ProblemSpec.quadratic(),
                    deadline_seconds=0.3,
                    analog_time_limit=1e-3,
                )
            ],
            tracer=tracer,
        )
        outcome = result.outcomes[0]
        assert outcome.status == "converged"
        assert outcome.attempt_history == ["timeout", "converged"]
        assert outcome.retries == 1
        assert "solver_hang" in outcome.faults
        assert tracer.counters["runtime_timeouts"] == 1
        assert tracer.counters["runtime_retries"] == 1
        tracer.check_closed()

    def test_hang_on_every_attempt_ends_in_timeout_outcome(self):
        """If the stall recurs on every attempt, the request must end as
        a structured timeout — bounded attempts, no hang, no raise."""
        faults = FaultInjector(
            specs=tuple(
                FaultSpec(
                    kind="solver_hang", request_id="h-0", attempt=a, magnitude=0.5
                )
                for a in range(2)
            )
        )
        runtime = Runtime(
            seed=3,
            faults=faults,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        result = runtime.run_batch(
            [
                SolveRequest(
                    "h-0",
                    ProblemSpec.quadratic(),
                    deadline_seconds=0.2,
                    analog_time_limit=1e-3,
                )
            ]
        )
        outcome = result.outcomes[0]
        assert outcome.status == "timeout"
        assert outcome.attempts == 2
        assert outcome.attempt_history == ["timeout", "timeout"]


class TestWorkerCrash:
    def test_pooled_kill_the_worker_batch_completes(self):
        """The acceptance scenario: a worker process killed mid-batch
        (`os._exit` inside the pool). The batch must still complete via
        retry, and the failure must be recorded in the trace manifest."""
        faults = FaultInjector(
            specs=(FaultSpec(kind="worker_crash", request_id="c-1", attempt=0),)
        )
        tracer = Tracer()
        runtime = Runtime(
            workers=2,
            seed=3,
            faults=faults,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
        )
        result = runtime.run_batch(_quadratic_requests(4, prefix="c"), tracer=tracer)
        assert len(result.outcomes) == 4
        assert all(o.status in TERMINAL_STATUSES for o in result.outcomes)
        assert all(o.ok for o in result.outcomes)
        crashed = result.outcome_for("c-1")
        assert crashed.attempts >= 2
        assert "worker_crash" in crashed.faults
        assert tracer.counters["worker_crashes"] >= 1
        assert tracer.manifest["runtime"]["worker_crashes"] >= 1
        tracer.check_closed()

    def test_serial_crash_simulation_takes_same_recovery_path(self):
        faults = FaultInjector(
            specs=(FaultSpec(kind="worker_crash", request_id="c-0", attempt=0),)
        )
        tracer = Tracer()
        runtime = Runtime(
            workers=1,
            seed=3,
            faults=faults,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        result = runtime.run_batch(
            [SolveRequest("c-0", ProblemSpec.quadratic(), analog_time_limit=1e-3)],
            tracer=tracer,
        )
        outcome = result.outcomes[0]
        assert outcome.ok and outcome.attempts == 2
        assert outcome.attempt_history == ["crashed", "converged"]
        assert tracer.counters["worker_crashes"] == 1

    def test_crash_on_final_attempt_is_structured_failure(self):
        faults = FaultInjector(
            specs=(FaultSpec(kind="worker_crash", request_id="c-0", attempt=0),)
        )
        runtime = Runtime(workers=1, seed=3, faults=faults, retry=RetryPolicy(max_attempts=1))
        result = runtime.run_batch(
            [SolveRequest("c-0", ProblemSpec.quadratic(), analog_time_limit=1e-3)]
        )
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.error == "worker crashed"


class TestLadderExhaustion:
    def test_all_rungs_failing_yields_failed_outcome_not_exception(self):
        """A hybrid-only ladder on a problem outside the undamped basin,
        retried to the attempt bound: the terminal outcome is `failed`
        with the per-rung diagnosis, and nothing leaks as an exception."""
        runtime = Runtime(
            seed=5, retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)
        )
        result = runtime.run_batch(
            [
                SolveRequest(
                    "f-0",
                    ProblemSpec.burgers(4, 5.0, seed=11),
                    rungs=("hybrid",),
                    analog_time_limit=1e-3,
                )
            ]
        )
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert "ladder exhausted" in outcome.error
        assert outcome.rungs_tried == ("hybrid",)


class TestMixedChaosBatch:
    def test_every_request_ends_terminal_under_mixed_faults(self):
        """Rate-based chaos across a pooled batch: whatever fires, every
        request must end in exactly one terminal outcome and the
        counters must reconcile with the outcomes."""
        faults = FaultInjector.from_rates(
            {"worker_crash": 0.2, "analog_spike": 0.2}, seed=13
        )
        tracer = Tracer()
        runtime = Runtime(
            workers=2,
            seed=13,
            faults=faults,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
        )
        requests = _quadratic_requests(6, prefix="m")
        with np.errstate(all="ignore"):
            result = runtime.run_batch(requests, tracer=tracer)
        assert sorted(o.request_id for o in result.outcomes) == sorted(
            r.request_id for r in requests
        )
        assert all(o.status in TERMINAL_STATUSES for o in result.outcomes)
        completed = tracer.counters.get("requests_completed", 0)
        failed = tracer.counters.get("requests_failed", 0)
        assert completed + failed == len(requests)
        assert tracer.counters["runtime_attempts"] == sum(
            o.attempts for o in result.outcomes
        )
        tracer.check_closed()
