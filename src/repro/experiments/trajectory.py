"""Checkpointed Burgers trajectory driver (``repro trajectory``).

Integrates the 2-D viscous Burgers system in time with the implicit
stepper — the same method-of-lines setup behind the paper's Figure 7/8
trajectories — while periodically snapshotting the full integration
state through :mod:`repro.checkpoint`. The command exists to make the
durability story drivable end to end from the CLI:

    python -m repro trajectory --nx 8 --steps 40 --checkpoint-dir ck/
    # ... SIGKILL mid-run ...
    python -m repro trajectory --nx 8 --steps 40 --checkpoint-dir ck/ --resume

The resumed run restores the stepper (BDF2 history, cached kernel
preconditioner), the trajectory prefix and the trace-counter deltas
from the newest valid snapshot, then continues — and is bitwise
identical to a run that was never killed. ``render()`` is fully
deterministic (no wall-clock fields) so the two runs can be diffed
textually; the ``states sha256`` line is a digest of the raw state
bytes, the strongest single-line witness of bitwise equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256
from typing import Optional, Union

import numpy as np

from repro.checkpoint import (
    GracefulShutdown,
    RunInterrupted,
    TrajectoryCheckpointer,
    resume_trajectory,
)
from repro.linalg.sparse import CsrMatrix, eye
from repro.pde.boundary import DirichletBoundary
from repro.pde.burgers import BurgersStencilSystem
from repro.pde.grid import Grid2D
from repro.pde.timestepping import ImplicitStepper, SpatialOperator, TrajectoryResult
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["TrajectoryRun", "burgers_operator", "run_trajectory"]


def burgers_operator(
    grid_n: int, reynolds: float, seed: int
) -> SpatialOperator:
    """The Burgers right-hand side ``N(w)`` as a spatial operator.

    Reuses :class:`~repro.pde.burgers.BurgersStencilSystem` as a
    stencil template: with zero right-hand side and unit weight its
    residual is ``w + N(w)``, so ``N(w) = residual(w) - w`` and the
    operator Jacobian is the template Jacobian minus the identity.
    The seeded Dirichlet boundary data makes distinct seeds distinct
    (but reproducible) trajectories.
    """
    grid = Grid2D.square(grid_n)
    rng = np.random.default_rng(seed)
    template = BurgersStencilSystem(
        grid,
        reynolds,
        rhs_u=np.zeros(grid.shape),
        rhs_v=np.zeros(grid.shape),
        boundary_u=DirichletBoundary.random(grid, rng),
        boundary_v=DirichletBoundary.random(grid, rng),
        weight=1.0,
    )
    dimension = template.dimension

    def apply(w: np.ndarray) -> np.ndarray:
        return template.residual(w) - w

    def jacobian(w: np.ndarray) -> CsrMatrix:
        return template.jacobian(w).add(eye(dimension, scale=-1.0))

    return SpatialOperator(dimension, apply, jacobian)


def initial_state(grid_n: int, seed: int) -> np.ndarray:
    """Seeded random initial velocity field (stacked u, v)."""
    rng = np.random.default_rng(seed)
    # Draws after the two boundary draws in burgers_operator would be
    # order-dependent; an independent stream keyed off the same seed
    # keeps the initial condition stable if the operator changes.
    return 0.5 * rng.standard_normal(2 * grid_n * grid_n)


@dataclass
class TrajectoryRun:
    """Deterministic summary of one (possibly resumed) trajectory."""

    nx: int
    reynolds: float
    dt: float
    scheme: str
    seed: int
    steps: int
    trajectory: TrajectoryResult
    resumed_from: Optional[int] = None
    checkpoints_written: int = 0
    checkpoints_rejected: int = 0
    interrupted_at: Optional[int] = None

    def render(self) -> str:
        trajectory = self.trajectory
        completed = len(trajectory.newton_results)
        digest_upto = (
            completed + 1
        )  # rows beyond the last completed step are uninitialized
        digest = sha256(
            np.ascontiguousarray(trajectory.states[:digest_upto]).tobytes()
        ).hexdigest()
        final = trajectory.states[completed]
        stats = trajectory.linear_stats
        lines = [
            f"trajectory: burgers nx={self.nx} re={self.reynolds} "
            f"scheme={self.scheme} dt={self.dt} seed={self.seed}",
            f"steps completed: {completed}/{self.steps}"
            + (
                f" [INTERRUPTED at step {self.interrupted_at}]"
                if self.interrupted_at is not None
                else ""
            ),
            f"converged steps: {sum(1 for r in trajectory.newton_results if r.converged)}"
            f"/{completed}",
            f"newton iterations: {trajectory.total_newton_iterations}",
            f"linear solves: {stats.solves} (inner iterations: "
            f"{stats.inner_iterations}, preconditioner builds: "
            f"{stats.preconditioner_builds})",
            f"final state: |y|_2 = {np.linalg.norm(final):.12e}, "
            f"max|y| = {np.max(np.abs(final)):.12e}",
            f"states sha256: {digest}",
        ]
        if self.resumed_from is not None:
            lines.append(f"resumed from checkpoint at step {self.resumed_from}")
        if self.checkpoints_written or self.checkpoints_rejected:
            lines.append(
                f"checkpoints: {self.checkpoints_written} written, "
                f"{self.checkpoints_rejected} rejected as corrupt"
            )
        return "\n".join(lines)


def run_trajectory(
    nx: int = 8,
    steps: int = 40,
    dt: float = 0.05,
    scheme: str = "bdf2",
    reynolds: float = 1.0,
    seed: int = 0,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 10,
    keep: int = 3,
    resume: bool = False,
    tracer: Optional[TracerLike] = None,
    shutdown: Optional[GracefulShutdown] = None,
    crash_at_step: Optional[int] = None,
) -> TrajectoryRun:
    """Integrate (or resume) one checkpointed Burgers trajectory.

    With ``checkpoint_dir`` unset this is a plain ``stepper.run``.
    ``resume=True`` requires a checkpoint directory and restarts from
    the newest valid snapshot in it (falling back to a fresh run when
    none validates). A SIGTERM/SIGINT observed through ``shutdown``
    flushes a final snapshot and marks the run interrupted rather than
    tearing it down mid-step.
    """
    if resume and checkpoint_dir is None:
        raise ValueError("--resume requires a checkpoint directory")
    tracer = as_tracer(tracer)
    operator = burgers_operator(nx, reynolds, seed)
    stepper = ImplicitStepper(operator, dt=dt, scheme=scheme)
    y0 = initial_state(nx, seed)

    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = TrajectoryCheckpointer(
            checkpoint_dir,
            every=checkpoint_every,
            keep=keep,
            shutdown=shutdown,
            crash_at_step=crash_at_step,
        )

    resumed_from: Optional[int] = None
    interrupted_at: Optional[int] = None
    try:
        if checkpoint is None:
            trajectory = stepper.run(y0, steps, tracer=tracer)
        elif resume:
            snapshot = checkpoint.load_latest(tracer)
            if snapshot is not None:
                resumed_from = snapshot.step
            trajectory = resume_trajectory(
                stepper, y0, steps, checkpoint, tracer=tracer, snapshot=snapshot
            )
        else:
            trajectory = stepper.run(y0, steps, tracer=tracer, checkpoint=checkpoint)
    except RunInterrupted as exc:
        # The checkpointer flushed a snapshot for the completed prefix
        # and attached the partial trajectory to the exception; report
        # it rather than tearing down mid-run.
        trajectory = getattr(exc, "trajectory", None)
        interrupted_at = getattr(exc, "step", None)
        if trajectory is None:
            raise

    return TrajectoryRun(
        nx=nx,
        reynolds=reynolds,
        dt=dt,
        scheme=scheme,
        seed=seed,
        steps=steps,
        trajectory=trajectory,
        resumed_from=resumed_from,
        checkpoints_written=checkpoint.saved if checkpoint is not None else 0,
        checkpoints_rejected=checkpoint.rejected if checkpoint is not None else 0,
        interrupted_at=interrupted_at,
    )
