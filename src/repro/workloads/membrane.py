"""Cook's-membrane mini-app: the deal.II finite-element analogue.

Table 1's last row: "Cook's membrane" by finite-element discretization
with nonlinear spring forces; the dominant kernel is "Solving Helmholtz
PDE with preconditioned SOR and CG" at 15.3 % of runtime.

The analogue is a membrane of quadrilateral elements with nonlinear
(hardening) springs: each Newton-like outer iteration

1. assembles the tangent stiffness *elementwise* — the per-element
   quadrature/scatter loop that dominates FE codes' runtime, and
2. solves the resulting Helmholtz-type system (stiffness plus the
   spring's linearized mass-like term) with SSOR-preconditioned CG.

Per Table 1's observation, the elementwise assembly keeps the solver
fraction small compared to the structured-grid workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.iterative import conjugate_gradient
from repro.linalg.preconditioners import SsorPreconditioner
from repro.linalg.sparse import CooBuilder
from repro.pde.grid import Grid2D
from repro.perf.profiles import KernelProfiler, ProfileReport

__all__ = ["CooksMembraneWorkload"]


@dataclass
class CooksMembraneWorkload:
    """FE membrane with nonlinear springs; SSOR-CG Helmholtz kernel."""

    grid_n: int = 22
    load: float = 0.5
    spring_stiffness: float = 1.0
    hardening: float = 0.8
    outer_iterations: int = 5

    KERNEL_NAME = "preconditioned SOR and CG"
    PAPER_FRACTION = 0.153

    def run(self) -> ProfileReport:
        profiler = KernelProfiler()
        grid = Grid2D.square(self.grid_n, spacing=1.0 / self.grid_n)
        n = grid.num_nodes
        w = np.zeros(n)  # transverse displacement
        # Element connectivity: quads of 4 nodes.
        elements = []
        for j in range(grid.ny - 1):
            for i in range(grid.nx - 1):
                elements.append(
                    (
                        grid.flat_index(i, j),
                        grid.flat_index(i + 1, j),
                        grid.flat_index(i, j + 1),
                        grid.flat_index(i + 1, j + 1),
                    )
                )
        # 2x2 Gauss quadrature on the bilinear reference quad — the
        # genuine per-element work a finite-element code performs.
        gauss = 1.0 / np.sqrt(3.0)
        quad_points = [(-gauss, -gauss), (gauss, -gauss), (-gauss, gauss), (gauss, gauss)]

        def shape_gradients(xi: float, eta: float) -> np.ndarray:
            """Reference-element gradients of the 4 bilinear shapes."""
            return 0.25 * np.array(
                [
                    [-(1.0 - eta), -(1.0 - xi)],
                    [(1.0 - eta), -(1.0 + xi)],
                    [-(1.0 + eta), (1.0 - xi)],
                    [(1.0 + eta), (1.0 + xi)],
                ]
            )

        def shape_values(xi: float, eta: float) -> np.ndarray:
            return 0.25 * np.array(
                [
                    (1.0 - xi) * (1.0 - eta),
                    (1.0 + xi) * (1.0 - eta),
                    (1.0 - xi) * (1.0 + eta),
                    (1.0 + xi) * (1.0 + eta),
                ]
            )

        jac_det = (grid.dx / 2.0) * (grid.dy / 2.0)
        inv_map = np.diag([2.0 / grid.dx, 2.0 / grid.dy])

        with profiler.run():
            for _ in range(self.outer_iterations):
                # FE assembly: per-element quadrature + scatter.
                with profiler.region("FE assembly"):
                    builder = CooBuilder(n, n)
                    residual = np.full(n, self.load * grid.dx * grid.dy)
                    for nodes in elements:
                        local_w = np.array([w[p] for p in nodes])
                        k_elem = np.zeros((4, 4))
                        f_elem = np.zeros(4)
                        for xi, eta in quad_points:
                            grads = shape_gradients(xi, eta) @ inv_map
                            values = shape_values(xi, eta)
                            w_q = float(values @ local_w)
                            grad_w = grads.T @ local_w
                            # Membrane stiffness: grad-grad term.
                            k_elem += (grads @ grads.T) * jac_det
                            f_elem -= (grads @ grad_w) * jac_det
                            # Nonlinear hardening spring, consistently
                            # linearized: f = k w (1 + a w^2),
                            # tangent = k (1 + 3 a w^2).
                            spring_force = self.spring_stiffness * w_q * (
                                1.0 + self.hardening * w_q**2
                            )
                            spring_tangent = self.spring_stiffness * (
                                1.0 + 3.0 * self.hardening * w_q**2
                            )
                            k_elem += np.outer(values, values) * spring_tangent * jac_det
                            f_elem -= values * spring_force * jac_det
                        for a, pa in enumerate(nodes):
                            residual[pa] += f_elem[a]
                            for b, pb in enumerate(nodes):
                                builder.add(pa, pb, k_elem[a, b])
                    tangent = builder.to_csr()

                # The Helmholtz solve of Table 1: SSOR-preconditioned CG.
                with profiler.region(self.KERNEL_NAME):
                    precond = SsorPreconditioner(tangent, omega=1.2)
                    # Inexact Newton: the inner solve is capped, as FE
                    # codes do — the outer loop absorbs the slack.
                    result = conjugate_gradient(
                        tangent, residual, preconditioner=precond, tol=1e-8,
                        max_iterations=6,
                    )
                with profiler.region("displacement update"):
                    w = w + result.x
        self._final_displacement = w
        return profiler.report()
