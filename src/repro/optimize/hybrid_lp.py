"""Hybrid analog-digital linear programming.

The LP analogue of the paper's headline pipeline: the analog barrier
flow settles on a near-optimal *interior* point; the digital side then

1. reads the active set off the interior point (coordinates driven to
   ~0 are the non-basic variables at the optimum),
2. solves the resulting square basis system exactly — one linear solve
   instead of a pivot sequence, and
3. verifies feasibility and optimality (via the dual/reduced costs);
   on any failed check it falls back to full simplex, so the hybrid
   result is never worse than the digital baseline.

The measurable win mirrors Figure 8's: simplex pivots avoided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.optimize.barrier_flow import BarrierFlowResult, barrier_flow_solve
from repro.optimize.simplex import LinearProgram, SimplexResult, simplex_solve

__all__ = ["HybridLpResult", "hybrid_lp_solve"]


@dataclass
class HybridLpResult:
    """Outcome of the hybrid LP pipeline."""

    x: np.ndarray
    objective: float
    optimal: bool
    used_fallback: bool
    flow: BarrierFlowResult
    basis: List[int]
    pivots_saved: Optional[int] = None
    """Simplex pivots the verified basis identification avoided (filled
    when the caller also ran the baseline; None otherwise)."""


def _crossover(problem: LinearProgram, interior: np.ndarray):
    """Exact vertex from an interior point by basis identification."""
    m, n = problem.a.shape
    order = np.argsort(interior)[::-1]
    basis = sorted(int(i) for i in order[:m])
    a_basis = problem.a[:, basis]
    if np.linalg.matrix_rank(a_basis) < m:
        return None
    x = np.zeros(n)
    x_basis = np.linalg.solve(a_basis, problem.b)
    if np.any(x_basis < -1e-8):
        return None
    x[basis] = np.maximum(x_basis, 0.0)
    # Optimality: reduced costs of nonbasic variables must be >= 0.
    y = np.linalg.solve(a_basis.T, problem.c[basis])
    reduced = problem.c - problem.a.T @ y
    if np.any(reduced < -1e-7):
        return None
    return x, basis


def hybrid_lp_solve(
    problem: LinearProgram,
    mu: float = 1e-4,
    time_limit: float = 2_000.0,
) -> HybridLpResult:
    """Barrier-flow seed, basis crossover, verified exact answer."""
    flow = barrier_flow_solve(problem, mu=mu, time_limit=time_limit)
    if flow.feasible:
        crossed = _crossover(problem, flow.x)
        if crossed is not None:
            x, basis = crossed
            return HybridLpResult(
                x=x,
                objective=problem.objective(x),
                optimal=True,
                used_fallback=False,
                flow=flow,
                basis=basis,
            )
    fallback: SimplexResult = simplex_solve(problem)
    return HybridLpResult(
        x=fallback.x,
        objective=fallback.objective,
        optimal=fallback.optimal,
        used_fallback=True,
        flow=flow,
        basis=list(fallback.basis),
    )
