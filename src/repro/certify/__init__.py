"""A-posteriori certification of solve results (the trust-but-verify layer).

Every layer below this one — the hybrid solver, the degradation
ladder, the runtime, the fleet — ultimately trusts the solver's own
``converged`` / ``seed_accepted`` flags. That trust is exactly what a
*silent* corruption exploits: an answer that is wrong but passes its
own acceptance test propagates to the user, the write-ahead journal,
and the bench scoreboard unchallenged. ``repro.certify`` closes the
loop after the solve:

* :mod:`repro.certify.certificate` — :class:`SolveCertificate`, a
  machine-checkable verdict built from an *independently recomputed*
  relative residual (a separate minimal residual path, not the
  solver's bookkeeping), a non-finite/bounds scan, boundary-condition
  satisfaction, and per-PDE conservation invariants;
* :mod:`repro.certify.residuals` — the independent residual paths
  (direct ghost-cell assembly for Burgers, closed form for the coupled
  quadratic);
* :mod:`repro.certify.verify` — offline re-verification of any batch
  journal (``repro verify-journal``);
* :mod:`repro.certify.canary` — seeded known-answer probes routed
  through each fleet board, a leading health signal that quarantines
  drifting silicon before user traffic sees it.

Certificates are **read-only observers**: they consume no random
streams and never touch the solution, so a certified run is bitwise
identical to an uncertified one unless a certificate actually fails —
only then does the runtime's escalation path (independent damped-Newton
re-solve on a different board) activate.
"""

from repro.certify.canary import CanaryResult, canary_reference, probe_board, run_canary_sweep
from repro.certify.certificate import (
    CertificateCheck,
    CertifyPolicy,
    SolveCertificate,
    certify_solution,
    solution_digest,
)
from repro.certify.residuals import independent_residual, independent_residual_norms
from repro.certify.verify import JournalVerification, verify_journal

__all__ = [
    "CanaryResult",
    "CertificateCheck",
    "CertifyPolicy",
    "JournalVerification",
    "SolveCertificate",
    "canary_reference",
    "certify_solution",
    "independent_residual",
    "independent_residual_norms",
    "probe_board",
    "run_canary_sweep",
    "solution_digest",
    "verify_journal",
]
