"""Ordinary differential equation integration substrate.

The analog accelerator *is* an ODE solver realized in silicon: the
continuous Newton method, homotopy continuation, and continuous
gradient descent are all ODEs whose settling dynamics the paper's
simulated scaled-up accelerator integrates numerically (Section 6.1,
built there on Odeint). This package is our from-scratch equivalent:

* fixed-step explicit Euler and classical RK4
  (:mod:`repro.ode.fixed_step`),
* adaptive Dormand-Prince RK45 with PI step-size control
  (:mod:`repro.ode.dormand_prince`),
* settle (steady-state) detection, which is how an analog run "ends":
  integration stops when the state's rate of change stays below a
  threshold for a dwell interval (:mod:`repro.ode.events`).
"""

from repro.ode.solution import OdeSolution
from repro.ode.fixed_step import integrate_euler, integrate_rk4
from repro.ode.dormand_prince import integrate_rk45
from repro.ode.events import SettleDetector, integrate_until_settled

__all__ = [
    "OdeSolution",
    "integrate_euler",
    "integrate_rk4",
    "integrate_rk45",
    "SettleDetector",
    "integrate_until_settled",
]
