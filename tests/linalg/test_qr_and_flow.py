"""Tests for sparse QR and the continuous gradient-flow solver."""

import numpy as np
import pytest

from repro.linalg.gradient_flow import gradient_flow_rhs, gradient_flow_solve
from repro.linalg.qr import SparseQr, qr_operation_count
from repro.linalg.sparse import CooBuilder, eye


def tridiag(n):
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, 4.0)
        if i > 0:
            builder.add(i, i - 1, -1.0)
        if i < n - 1:
            builder.add(i, i + 1, 1.5)
    return builder.to_csr()


class TestSparseQr:
    def test_solves_exactly(self):
        mat = tridiag(10)
        x_true = np.random.default_rng(0).standard_normal(10)
        qr = SparseQr.factor(mat)
        np.testing.assert_allclose(qr.solve(mat.matvec(x_true)), x_true, rtol=1e-9, atol=1e-10)

    def test_requires_square(self):
        builder = CooBuilder(2, 3)
        builder.add(0, 0, 1.0)
        with pytest.raises(ValueError):
            SparseQr.factor(builder.to_csr())

    def test_operation_count_grows_with_bandwidth(self):
        # Same size, wider bandwidth must cost more.
        narrow = tridiag(32)
        builder = CooBuilder(32, 32)
        for i in range(32):
            builder.add(i, i, 4.0)
            if i >= 8:
                builder.add(i, i - 8, -1.0)
            if i < 24:
                builder.add(i, i + 8, -1.0)
        wide = builder.to_csr()
        assert qr_operation_count(wide) > qr_operation_count(narrow)

    def test_operation_count_superlinear_in_grid(self):
        # Doubling a square-grid problem should more than double QR cost
        # (bandwidth grows with grid width) -- the effect behind the
        # GPU time jump from 16x16 to 32x32 in Figure 9.
        def grid_matrix(n):
            size = n * n
            builder = CooBuilder(size, size)
            for j in range(n):
                for i in range(n):
                    k = j * n + i
                    builder.add(k, k, 4.0)
                    if i > 0:
                        builder.add(k, k - 1, -1.0)
                    if j > 0:
                        builder.add(k, k - n, -1.0)
            return builder.to_csr()

        small = qr_operation_count(grid_matrix(8))
        large = qr_operation_count(grid_matrix(16))
        assert large > 6.0 * small

    def test_empty_matrix_count(self):
        assert qr_operation_count(CooBuilder(0, 0).to_csr()) == 0.0


class TestGradientFlow:
    def test_solves_spd_system(self):
        a = np.array([[3.0, 1.0], [1.0, 2.0]])
        b = np.array([5.0, 5.0])
        result = gradient_flow_solve(a, b, time_limit=200.0)
        assert result.settled
        np.testing.assert_allclose(a @ result.delta, b, atol=1e-5)

    def test_solves_nonsymmetric_system(self):
        a = np.array([[2.0, -1.0], [0.5, 1.0]])
        x_true = np.array([1.0, -1.0])
        result = gradient_flow_solve(a, a @ x_true, time_limit=500.0)
        assert result.settled
        np.testing.assert_allclose(result.delta, x_true, atol=1e-5)

    def test_sparse_input(self):
        mat = tridiag(6)
        x_true = np.ones(6)
        result = gradient_flow_solve(mat, mat.matvec(x_true), time_limit=500.0)
        assert result.settled
        np.testing.assert_allclose(result.delta, x_true, atol=1e-4)

    def test_singular_system_settles_at_least_squares(self):
        # Rank-1 matrix: flow settles at a least-squares point where the
        # normal-equation residual A^T (A x - b) vanishes.
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([1.0, 3.0])  # inconsistent
        result = gradient_flow_solve(a, b, time_limit=500.0)
        assert result.settled
        normal_residual = a.T @ (a @ result.delta - b)
        np.testing.assert_allclose(normal_residual, 0.0, atol=1e-5)

    def test_gain_speeds_settling(self):
        a = np.array([[2.0, 0.0], [0.0, 1.0]])
        b = np.array([2.0, 1.0])
        slow = gradient_flow_solve(a, b, gain=1.0, time_limit=500.0)
        fast = gradient_flow_solve(a, b, gain=10.0, time_limit=500.0)
        assert fast.settled and slow.settled
        assert fast.settle_time < slow.settle_time

    def test_rhs_factory_shape(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        rhs = gradient_flow_rhs(a, np.array([1.0, 1.0]))
        out = rhs(0.0, np.zeros(2))
        assert out.shape == (2,)
        # At delta = solution, the flow is stationary.
        x = np.linalg.solve(a, np.array([1.0, 1.0]))
        np.testing.assert_allclose(rhs(0.0, x), 0.0, atol=1e-10)

    def test_initial_guess_used(self):
        a = np.eye(2)
        b = np.array([1.0, 1.0])
        result = gradient_flow_solve(a, b, delta0=b.copy(), time_limit=50.0)
        assert result.settled
        # Starting at the exact solution, only the dwell interval and the
        # integrator's first few steps elapse before settling.
        assert result.settle_time < 10.0
        np.testing.assert_allclose(result.delta, b, atol=1e-10)
