"""Extension bench: the Section 7 generality claims, made measurable.

Section 7 discusses how the technique extends across PDE classes,
nonlinearity types, dimensionality, and discretization order. Each
test here quantifies one of those claims with this library's
implementations:

* higher-order stencils: equal accuracy with fewer nodes, at a larger
  per-variable accelerator routing cost;
* dimensionality: 3-D work decomposes into accelerator-sized 1-D lines;
* transcendental nonlinearity: the lookup-table function generator's
  resolution bounds the reachable solution accuracy.
"""

import numpy as np
import pytest

from repro.analog.function_generator import make_exp_pair
from repro.nonlinear.newton import NewtonOptions, newton_solve
from repro.pde.bratu import BratuProblem1D
from repro.pde.burgers1d import Burgers1DStencilSystem, stencil_width
from repro.pde.burgers3d import Burgers3DSplitStepper


def manufactured_error(order, n):
    """Discretization error of the 1-D Burgers stencil on a smooth
    manufactured solution."""
    spacing = 1.0 / (n + 1)
    xs = (np.arange(n) + 1) * spacing
    target = 0.5 * np.sin(np.pi * xs)
    reynolds, weight = 1.0, 0.1
    up = 0.5 * np.pi * np.cos(np.pi * xs)
    upp = -0.5 * np.pi**2 * np.sin(np.pi * xs)
    rhs_exact = target + weight * (target * up - upp / reynolds)
    system = Burgers1DStencilSystem(
        num_nodes=n,
        reynolds=reynolds,
        rhs=rhs_exact,
        weight=weight,
        spacing=spacing,
        order=order,
    )
    result = newton_solve(system, target.copy(), NewtonOptions(tolerance=1e-12))
    assert result.converged
    return float(np.max(np.abs(result.u - target)))


def test_stencil_order_tradeoff(benchmark):
    def run():
        return {
            (order, n): manufactured_error(order, n)
            for order in (2, 4)
            for n in (15, 31, 63)
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nmax error by (order, nodes):", {k: f"{v:.2e}" for k, v in errors.items()})

    # Order of accuracy: error ratios across a mesh doubling.
    ratio2 = errors[(2, 15)] / errors[(2, 31)]
    ratio4 = errors[(4, 15)] / errors[(4, 31)]
    assert 3.0 < ratio2 < 5.0  # ~ 2^2
    assert ratio4 > 10.0  # ~ 2^4

    # The paper's trade: the 4th-order scheme at 15 nodes beats the
    # 2nd-order scheme at 63 nodes (fewer nodes, more accuracy)...
    assert errors[(4, 15)] < errors[(2, 63)]
    # ...but costs more accelerator routing per variable.
    system2 = Burgers1DStencilSystem(15, 1.0, np.zeros(15), order=2)
    system4 = Burgers1DStencilSystem(15, 1.0, np.zeros(15), order=4)
    assert system4.tile_inputs_per_variable() == system2.tile_inputs_per_variable() + 2


def test_3d_decomposes_into_line_problems(benchmark):
    n = 7
    stepper = Burgers3DSplitStepper(n=n, reynolds=1.0, dt=0.05)
    field = np.zeros((n, n, n))
    field[n // 2, n // 2, n // 2] = 0.8

    out = benchmark.pedantic(stepper.step, args=(field,), rounds=1, iterations=1)

    # All work decomposed into 3 n^2 accelerator-sized lines.
    assert stepper.lines_solved == 3 * n * n
    # The physics still happens: diffusion spreads the bump.
    assert np.max(np.abs(out)) < 0.8
    assert out[n // 2 - 1, n // 2, n // 2] > 0.0


def test_lookup_resolution_bounds_accuracy(benchmark):
    exact_problem = BratuProblem1D(num_nodes=31, lam=2.0)
    exact = newton_solve(
        exact_problem, exact_problem.lower_branch_guess(), NewtonOptions(tolerance=1e-12)
    )

    def sweep():
        deviations = {}
        for bits in (6, 9, 12):
            problem = BratuProblem1D(
                num_nodes=31, lam=2.0, exp_pair=make_exp_pair((-1.0, 4.0), table_bits=bits)
            )
            result = newton_solve(
                problem, problem.lower_branch_guess(), NewtonOptions(tolerance=1e-7)
            )
            assert result.converged
            deviations[bits] = float(np.max(np.abs(result.u - exact.u)))
        return deviations

    deviations = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nsolution deviation by table bits:", {k: f"{v:.2e}" for k, v in deviations.items()})
    # Monotone improvement, roughly 4x per address bit (h^2 law).
    assert deviations[6] > deviations[9] > deviations[12]
    assert deviations[6] > 50.0 * deviations[12]
