"""Ablation: the linear kernel inside digital Newton steps.

Each Newton step solves ``J delta = F``; Table 1's solvers pick
different kernels (Bi-CGstab, PCG, SOR+CG, sparse QR). This ablation
runs the same Burgers Newton solve over our kernel menu and checks the
trade-offs the paper leans on: Krylov methods all reach the same
answer; preconditioning cuts inner iterations; and the dense/QR path
matches the iterative ones to high precision.
"""

import numpy as np
import pytest

from repro.linalg.iterative import bicgstab, gmres
from repro.linalg.preconditioners import Ilu0Preconditioner, JacobiPreconditioner
from repro.linalg.qr import SparseQr
from repro.nonlinear.newton import NewtonOptions, newton_solve
from repro.pde.burgers import random_burgers_system


def make_instance(seed=0, n=6, reynolds=1.0):
    return random_burgers_system(n, reynolds, np.random.default_rng(seed))


def kernel_bicgstab_jacobi(jacobian, rhs):
    return bicgstab(jacobian, rhs, preconditioner=JacobiPreconditioner(jacobian), tol=1e-12).x


def kernel_bicgstab_ilu(jacobian, rhs):
    return bicgstab(jacobian, rhs, preconditioner=Ilu0Preconditioner(jacobian), tol=1e-12).x


def kernel_gmres(jacobian, rhs):
    return gmres(jacobian, rhs, preconditioner=JacobiPreconditioner(jacobian), tol=1e-12).x


def kernel_sparse_qr(jacobian, rhs):
    return SparseQr.factor(jacobian).solve(rhs)


KERNELS = {
    "Bi-CGstab + Jacobi": kernel_bicgstab_jacobi,
    "Bi-CGstab + ILU(0)": kernel_bicgstab_ilu,
    "GMRES + Jacobi": kernel_gmres,
    "sparse QR (GPU kernel)": kernel_sparse_qr,
}


def test_all_kernels_reach_same_root(benchmark):
    system, guess = make_instance()

    def run_all():
        return {
            name: newton_solve(
                system, guess, NewtonOptions(tolerance=1e-11, max_iterations=60), kernel
            )
            for name, kernel in KERNELS.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\niterations by kernel:", {k: r.iterations for k, r in results.items()})

    reference = results["sparse QR (GPU kernel)"]
    assert reference.converged
    for name, result in results.items():
        assert result.converged, name
        np.testing.assert_allclose(result.u, reference.u, atol=1e-8, err_msg=name)
        # Exact and inexact inner solves cost comparable Newton steps.
        assert abs(result.iterations - reference.iterations) <= 2, name


def test_ilu_cuts_inner_iterations(benchmark):
    system, guess = make_instance(seed=2, n=8)
    jacobian = system.jacobian(guess)
    rhs = system.residual(guess)
    plain = benchmark.pedantic(bicgstab, args=(jacobian, rhs), kwargs={"tol": 1e-10}, rounds=1, iterations=1)
    jacobi = bicgstab(jacobian, rhs, preconditioner=JacobiPreconditioner(jacobian), tol=1e-10)
    ilu = bicgstab(jacobian, rhs, preconditioner=Ilu0Preconditioner(jacobian), tol=1e-10)
    assert ilu.converged and jacobi.converged
    assert ilu.iterations <= jacobi.iterations
    if plain.converged:
        assert ilu.iterations <= plain.iterations


def test_near_singular_jacobian_prefers_gmres(benchmark):
    # At high Reynolds numbers the Jacobian loses diagonal dominance;
    # GMRES with Jacobi still solves systems where Bi-CGstab may stall.
    system, guess = make_instance(seed=5, n=6, reynolds=10.0)
    jacobian = system.jacobian(guess)
    rhs = system.residual(guess)
    result = benchmark.pedantic(
        gmres,
        args=(jacobian, rhs),
        kwargs={
            "preconditioner": JacobiPreconditioner(jacobian),
            "tol": 1e-10,
            "max_iterations": 20_000,
        },
        rounds=1,
        iterations=1,
    )
    assert result.converged
    np.testing.assert_allclose(jacobian.matvec(result.x), rhs, atol=1e-7)
