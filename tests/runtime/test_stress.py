"""Stress/soak tier for the fault-tolerant runtime (nightly CI).

A 500-request pooled batch under light rate-based chaos is the
load-shaped complement to the scenario-shaped chaos suite: instead of
asking "does fault X take recovery path Y", it asks the bookkeeping
questions that only show up at volume — are any requests lost across
queue windows, do the trace span counts reconcile with the outcome
attempt counts, do the counters add up. Everything is explicitly
seeded; marked ``slow`` so the default tier skips it (run with
``pytest --runslow -m slow``).
"""

import numpy as np
import pytest

from repro.runtime import (
    FaultInjector,
    ProblemSpec,
    RetryPolicy,
    Runtime,
    SolveRequest,
    TERMINAL_STATUSES,
)
from repro.trace.tracer import Tracer

pytestmark = pytest.mark.slow

BATCH_SIZE = 500


def _soak_requests():
    """500 cheap-but-real requests: mostly scalar quadratics (distinct
    roots), every 50th a small Burgers grid to keep the PDE path hot.
    analog_time_limit bounds the simulated settle so an unlucky die
    sample cannot stall the soak."""
    requests = []
    for i in range(BATCH_SIZE):
        if i % 50 == 0:
            problem = ProblemSpec.burgers(2, 2.0, seed=100 + i)
        else:
            problem = ProblemSpec.quadratic(rhs0=1.0 + 0.003 * i)
        requests.append(
            SolveRequest(f"soak-{i:04d}", problem, analog_time_limit=1e-3)
        )
    return requests


class TestSoakBatch:
    def test_500_requests_none_lost_and_trace_reconciles(self):
        requests = _soak_requests()
        faults = FaultInjector.from_rates(
            {"worker_crash": 0.01, "analog_spike": 0.02}, seed=71
        )
        tracer = Tracer()
        runtime = Runtime(
            workers=4,
            queue_limit=64,  # forces ~8 admission windows over the batch
            seed=71,
            faults=faults,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
        )
        with np.errstate(all="ignore"):
            result = runtime.run_batch(requests, tracer=tracer)

        # Zero lost requests: exactly one terminal outcome per id, in
        # submission order, across every queue window.
        assert [o.request_id for o in result.outcomes] == [
            r.request_id for r in requests
        ]
        assert all(o.status in TERMINAL_STATUSES for o in result.outcomes)

        # Trace reconciliation: one solve_attempt span per attempt the
        # outcomes claim, and the counters agree with both.
        total_attempts = sum(o.attempts for o in result.outcomes)
        assert len(tracer.spans_named("solve_attempt")) == total_attempts
        assert tracer.counters["runtime_attempts"] == total_attempts
        assert len(tracer.spans_named("runtime_batch")) == 1

        completed = tracer.counters.get("requests_completed", 0)
        failed = tracer.counters.get("requests_failed", 0)
        assert completed + failed == BATCH_SIZE
        manifest = tracer.manifest["runtime"]
        assert manifest["requests"] == BATCH_SIZE
        assert manifest["requests_completed"] == completed

        # The soak should overwhelmingly succeed: chaos rates are low
        # and every fault kind has a recovery path.
        assert completed >= int(BATCH_SIZE * 0.95)
        tracer.check_closed()
