"""Deterministic fault injection for the runtime's chaos harness.

Robustness that is asserted but never exercised is fiction; the
:class:`FaultInjector` makes the failure modes the runtime claims to
survive *reproducible test inputs*:

* ``analog_spike`` — the accelerator's measurement comes back silently
  corrupted (large noise added to the solution while ``converged``
  stays set): the poisoned-seed case of Figure 6 taken to the extreme,
  which the degradation ladder must absorb by falling past the hybrid
  rung;
* ``solver_hang`` — a bounded stall inside the Newton iteration, which
  the deadline watchdog must convert into a ``timeout`` outcome and a
  retry instead of a stuck batch;
* ``worker_crash`` — the worker process dies mid-solve
  (``os._exit``), which the pool supervisor must convert into charged
  crashed attempts plus a degrade of the rest of the window to
  in-process execution. In serial (in-process) mode the
  crash is simulated by raising :class:`InjectedWorkerCrash` so the
  suite exercises the same recovery path without killing the test
  process;
* ``silent_corruption`` — a small seeded element perturbation applied
  *after* the ladder accepts a converged answer, sized to evade the
  seed-quality gate and every bounds scan while failing the
  independent certificate (:mod:`repro.certify`) by orders of
  magnitude. The one fault no pre-solve gate can see — it exists to
  prove the a-posteriori certification layer earns its keep.

Faults are matched per ``(request_id, attempt)`` — either explicitly
via :class:`FaultSpec` or probabilistically via per-kind rates drawn
from :func:`repro.runtime.api.stable_seed`-keyed streams — so a chaos
run replays identically regardless of worker count or scheduling.
The injector is immutable-ish and picklable; per-attempt state (the
"fired once" latch of a hang, the log of injected faults) lives in the
closures and list handed out per attempt, never on the injector.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.api import stable_seed

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultInjector",
    "InjectedWorkerCrash",
]

FAULT_KINDS = (
    "analog_spike",
    "solver_hang",
    "worker_crash",
    "degrade_analog",
    "silent_corruption",
)

_DEFAULT_MAGNITUDES = {
    # Spike amplitude in solution units (the dynamic range is +-3).
    "analog_spike": 1e4,
    # Stall length in seconds; bounded so an injected hang can never
    # wedge a suite, only a deadline.
    "solver_hang": 0.5,
    # Worker exit code (visible in pool diagnostics).
    "worker_crash": 17.0,
    # Offset-drift sigma per degradation step, in full-scale units.
    # Large enough that a single step already yields a gate-rejectable
    # seed (the per-attempt accelerator only ages one step), small
    # enough that the drifted continuous-Newton flow still settles
    # quickly instead of wandering a root-free landscape.
    "degrade_analog": 0.3,
    # Elementwise perturbation applied AFTER the solver accepts, in
    # solution units: large enough that the independent certificate's
    # relative-residual bound (1e-6) fails by orders of magnitude,
    # small enough to evade the seed-quality gate, the value-bound
    # scan, and any eyeball of the answer.
    "silent_corruption": 1e-3,
}


class InjectedWorkerCrash(RuntimeError):
    """Serial-mode stand-in for a worker process dying mid-solve."""


@dataclass(frozen=True)
class FaultSpec:
    """One targeted fault: inject ``kind`` on a specific attempt.

    ``request_id=None`` matches every request (useful for
    every-first-attempt scenarios). ``magnitude`` falls back to the
    per-kind default when not set.
    """

    kind: str
    request_id: Optional[str] = None
    attempt: int = 0
    magnitude: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")

    def matches(self, request_id: str, attempt: int) -> bool:
        if self.attempt != attempt:
            return False
        return self.request_id is None or self.request_id == request_id

    @property
    def effective_magnitude(self) -> float:
        if self.magnitude is not None:
            return self.magnitude
        return _DEFAULT_MAGNITUDES[self.kind]


@dataclass(frozen=True)
class FaultInjector:
    """A seeded, picklable fault plan evaluated per (request, attempt).

    ``specs`` are explicit targeted faults; ``rates`` maps fault kind
    to a probability evaluated deterministically per
    ``(seed, request_id, attempt, kind)`` — a 0.25 rate hits the same
    requests every run, in every process.
    """

    specs: Tuple[FaultSpec, ...] = ()
    rates: Tuple[Tuple[str, float], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for kind, rate in self.rates:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in rates")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1], got {rate}")

    @classmethod
    def from_rates(cls, rates: Dict[str, float], seed: int = 0) -> "FaultInjector":
        return cls(rates=tuple(sorted(rates.items())), seed=seed)

    # -- fault selection ------------------------------------------------

    def active_faults(self, request_id: str, attempt: int) -> List[FaultSpec]:
        """Every fault that fires for this attempt, deterministic."""
        active = [spec for spec in self.specs if spec.matches(request_id, attempt)]
        covered = {spec.kind for spec in active}
        for kind, rate in self.rates:
            if kind in covered or rate <= 0.0:
                continue
            rng = np.random.default_rng(stable_seed(self.seed, request_id, attempt, kind))
            if rng.uniform() < rate:
                active.append(FaultSpec(kind=kind, request_id=request_id, attempt=attempt))
        return active

    def _first(self, kind: str, request_id: str, attempt: int) -> Optional[FaultSpec]:
        for spec in self.active_faults(request_id, attempt):
            if spec.kind == kind:
                return spec
        return None

    # -- the three seams ------------------------------------------------

    def maybe_crash_worker(
        self, request_id: str, attempt: int, allow_process_exit: bool
    ) -> None:
        """Kill the executing worker if a ``worker_crash`` fault fires.

        In pooled mode (``allow_process_exit=True``) this is a real
        ``os._exit`` — the parent sees a broken pool, exactly as with a
        segfault or an OOM kill. In serial mode it raises
        :class:`InjectedWorkerCrash` for the runtime to treat as a
        crashed attempt.
        """
        spec = self._first("worker_crash", request_id, attempt)
        if spec is None:
            return
        if allow_process_exit:
            os._exit(int(spec.effective_magnitude))
        raise InjectedWorkerCrash(
            f"injected worker crash for {request_id!r} attempt {attempt}"
        )

    def analog_hook(
        self, request_id: str, attempt: int, log: List[str]
    ) -> Optional[Callable]:
        """An ``AnalogAccelerator.fault_hook`` corrupting the seed, or None.

        The corruption is *silent*: the result keeps ``converged=True``
        while the measured solution is blasted with seeded noise — the
        worst case for the hybrid rung, whose polish then starts far
        outside the quadratic basin.
        """
        spec = self._first("analog_spike", request_id, attempt)
        if spec is None:
            return None
        injector_seed = stable_seed(self.seed, request_id, attempt, "analog_spike_noise")

        def corrupt(result):
            rng = np.random.default_rng(injector_seed)
            result.solution = result.solution + spec.effective_magnitude * rng.standard_normal(
                result.solution.shape
            )
            result.converged = True
            result.residual_norm = float("nan")
            log.append("analog_spike")
            return result

        return corrupt

    def corruption_hook(
        self, request_id: str, attempt: int, log: List[str]
    ) -> Optional[Callable]:
        """A post-acceptance solution corrupter, or None.

        Unlike :meth:`analog_hook` (which poisons the analog *seed*,
        for the ladder's polish to recover from), this fires after the
        ladder has already accepted a converged answer: a few seeded
        elements are nudged by ``magnitude`` while the reported
        ``residual_norm`` keeps its converged value — that lie is what
        makes the corruption *silent*. Only the independent certificate
        can catch it.
        """
        spec = self._first("silent_corruption", request_id, attempt)
        if spec is None:
            return None
        injector_seed = stable_seed(self.seed, request_id, attempt, "silent_corruption")

        def corrupt(solution: np.ndarray) -> np.ndarray:
            rng = np.random.default_rng(injector_seed)
            corrupted = np.array(solution, dtype=float, copy=True)
            hits = max(1, min(3, corrupted.size))
            indices = rng.choice(corrupted.size, size=hits, replace=False)
            signs = rng.choice((-1.0, 1.0), size=hits)
            corrupted[indices] += signs * spec.effective_magnitude
            log.append("silent_corruption")
            return corrupted

        return corrupt

    def degradation_schedule(
        self, request_id: str, attempt: int, log: List[str]
    ):
        """A :class:`repro.analog.health.DegradationSchedule`, or None.

        When a ``degrade_analog`` fault fires, the attempt's accelerator
        runs on a board whose components drift (offset walk of
        ``magnitude`` full-scale units per step, plus a tenth of that in
        gain) — the drift-induced bad seed the health layer must catch:
        gate rejection, ladder demotion to ``damped_newton``, and
        eventually tile quarantine.
        """
        spec = self._first("degrade_analog", request_id, attempt)
        if spec is None:
            return None
        from repro.analog.health import DegradationModel, DegradationSchedule

        magnitude = spec.effective_magnitude
        model = DegradationModel(
            gain_drift_sigma=0.1 * magnitude,
            offset_drift_sigma=magnitude,
            seed=stable_seed(self.seed, request_id, attempt, "degrade_analog"),
        )
        log.append("degrade_analog")
        return DegradationSchedule(model)

    def iteration_hook(
        self, request_id: str, attempt: int, log: List[str]
    ) -> Optional[Callable[[int, float], None]]:
        """A Newton iteration hook injecting one bounded stall, or None."""
        spec = self._first("solver_hang", request_id, attempt)
        if spec is None:
            return None
        state = {"fired": False}

        def stall(iteration: int, residual_norm: float) -> None:
            if state["fired"]:
                return
            state["fired"] = True
            log.append("solver_hang")
            time.sleep(spec.effective_magnitude)

        return stall

