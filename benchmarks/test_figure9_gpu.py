"""Benchmark: Figure 9 — GPU-scale time and energy, baseline vs seeded.

Regenerates the paper's largest experiment: 16x16 and 32x32 Burgers
problems at Re = 2.0, a GPU-offloaded Newton baseline against the full
hybrid pipeline (analog-backed red-black Gauss-Seidel seeding + GPU
polish). Checks the figure's shape: the seeded solver wins on both time
and energy, the win grows with problem size (paper: 5.7x time, 11.6x
energy at 32x32), and the analog seeding cost is negligible.
"""

import os

import pytest

from repro.experiments.figure9 import PAPER_FIGURE9, run_figure9

# The 32x32 leg takes a few minutes; set REPRO_FULL=1 to include it.
FULL = os.environ.get("REPRO_FULL", "0") == "1"
GRID_SIZES = (16, 32) if FULL else (16,)


def test_figure9(benchmark):
    result = benchmark.pedantic(
        run_figure9,
        kwargs={"grid_sizes": GRID_SIZES, "trials": 2 if not FULL else 1, "seed": 1},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())

    row16 = result.row_at(16)
    assert row16 is not None, "no 16x16 trial converged"

    # Seeding wins on time and energy at 16x16.
    assert row16["time speedup"] > 1.0
    assert row16["energy savings"] > 1.0

    # Analog seeding time is orders of magnitude below the GPU times
    # (paper: 1e-4 s vs 0.3-0.5 s).
    assert row16["analog seeding (s)"] < 0.01 * row16["digital seeded (s)"]
    assert row16["analog energy (J)"] < 0.01 * row16["seeded energy (J)"]

    if FULL:
        row32 = result.row_at(32)
        assert row32 is not None, "no 32x32 trial converged"
        # The win grows with problem size (paper: 1.7x -> 5.7x time).
        assert row32["time speedup"] > row16["time speedup"]
        # Band around the paper's 5.7x / 11.6x headline.
        assert 2.0 < row32["time speedup"] < 30.0
        assert 3.0 < row32["energy savings"] < 60.0


def test_paper_reference_numbers_recorded(benchmark):
    # The comparison targets stay pinned to the paper's reported data.
    benchmark.pedantic(lambda: PAPER_FIGURE9, rounds=1, iterations=1)
    assert PAPER_FIGURE9[32][0] == pytest.approx(2.75)
    assert PAPER_FIGURE9[32][0] / PAPER_FIGURE9[32][2] == pytest.approx(5.7, rel=0.02)
    assert PAPER_FIGURE9[32][3] / PAPER_FIGURE9[32][5] == pytest.approx(11.6, rel=0.02)
