"""Tracer core: span nesting, null tracer, export/read/merge, summary."""

import json

import numpy as np
import pytest

from repro.trace import (
    NULL_TRACER,
    NullTracer,
    SCHEMA_VERSION,
    TraceNestingError,
    Tracer,
    as_tracer,
    merge_traces,
    phase_rows,
    read_trace,
    render_trace_summary,
    write_trace,
)
from repro.trace.tracer import _NULL_SPAN


class FakeClock:
    """Deterministic monotonic clock for duration assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("solve") as outer:
            with tracer.span("newton_iter", iteration=1) as inner:
                inner.set("residual_norm", 0.5)
        tracer.check_closed()
        by_name = {record.name: record for record in tracer.spans}
        solve_rec = by_name["solve"]
        iter_rec = by_name["newton_iter"]
        assert solve_rec.parent_id is None and solve_rec.depth == 0
        assert iter_rec.parent_id == solve_rec.span_id and iter_rec.depth == 1
        assert iter_rec.attrs == {"iteration": 1, "residual_norm": 0.5}
        # Children complete before parents.
        assert tracer.spans[0].name == "newton_iter"

    def test_durations_are_monotonic(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        a, b = {r.name: r for r in tracer.spans}["a"], {r.name: r for r in tracer.spans}["b"]
        assert a.t_start < b.t_start < b.t_end < a.t_end
        assert a.duration > b.duration > 0

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(TraceNestingError, match="out of order"):
            outer.close()

    def test_check_closed_raises_on_dangling_span(self):
        tracer = Tracer()
        tracer.span("dangling")
        assert tracer.open_depth == 1
        with pytest.raises(TraceNestingError, match="dangling"):
            tracer.check_closed()

    def test_exception_inside_span_closes_it_and_tags_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("risky"):
                raise ValueError("boom")
        tracer.check_closed()
        assert tracer.spans[0].attrs["error"] == "ValueError"

    def test_update_and_set_are_chainable(self):
        tracer = Tracer()
        span = tracer.span("s")
        assert span.set("a", 1) is span
        assert span.update(b=2, c=3) is span
        span.close()
        assert tracer.spans[0].attrs == {"a": 1, "b": 2, "c": 3}


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        tracer = Tracer()
        tracer.counter("restarts")
        tracer.counter("restarts", 2)
        assert tracer.counters["restarts"] == 3

    def test_gauge_keeps_last_value(self):
        tracer = Tracer()
        tracer.gauge("residual", 1.0)
        tracer.gauge("residual", 0.25)
        assert tracer.gauges["residual"] == 0.25

    def test_queries(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("x"):
            pass
        with tracer.span("x"):
            pass
        assert len(tracer.spans_named("x")) == 2
        assert tracer.total_duration("x") == pytest.approx(2.0)
        assert tracer.spans_named("missing") == []
        assert tracer.total_duration("missing") == 0.0


class TestNullTracer:
    def test_as_tracer_maps_none_to_shared_null(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer

    def test_null_span_is_a_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b") is _NULL_SPAN

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        assert null.active is False and Tracer.active is True
        with null.span("anything", key=1) as span:
            span.set("x", 2).update(y=3)
        null.counter("c")
        null.gauge("g", 1.0)  # nothing to assert: no state exists


class TestExporter:
    def _sample_tracer(self) -> Tracer:
        tracer = Tracer(manifest={"command": "test", "seed": 7}, clock=FakeClock())
        with tracer.span("solve", solver="hybrid"):
            with tracer.span("linear_solve", inner_iterations=12):
                pass
        tracer.counter("restarts", 2)
        tracer.gauge("residual", 1e-9)
        return tracer

    def test_write_read_round_trip(self, tmp_path):
        path = write_trace(self._sample_tracer(), tmp_path / "t.jsonl")
        trace = read_trace(path)
        assert trace.manifest["schema"] == SCHEMA_VERSION
        assert trace.manifest["command"] == "test"
        assert trace.manifest["seed"] == 7
        assert "repro_version" in trace.manifest
        assert [span["name"] for span in trace.spans] == ["linear_solve", "solve"]
        assert trace.sum_attr("linear_solve", "inner_iterations") == 12
        assert trace.counters == {"restarts": 2}
        assert trace.gauges == {"residual": 1e-9}

    def test_every_line_is_standalone_json(self, tmp_path):
        path = write_trace(self._sample_tracer(), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 2 + 1 + 1  # manifest + spans + counter + gauge
        for line in lines:
            record = json.loads(line)
            assert record["type"] in ("manifest", "span", "counter", "gauge")

    def test_numpy_attrs_are_coerced(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", norm=np.float64(0.5), count=np.int64(3)):
            pass
        trace = read_trace(write_trace(tracer, tmp_path / "t.jsonl"))
        attrs = trace.spans[0]["attrs"]
        assert attrs == {"norm": 0.5, "count": 3}

    def test_write_refuses_open_spans(self, tmp_path):
        tracer = Tracer()
        tracer.span("open")
        with pytest.raises(TraceNestingError):
            write_trace(tracer, tmp_path / "t.jsonl")
        write_trace(tracer, tmp_path / "t.jsonl", check_closed=False)

    def test_read_rejects_garbage(self, tmp_path):
        # An invalid *final* line reads as a torn tail (the writer was
        # killed mid-append) — flagged, not fatal...
        torn = tmp_path / "torn.jsonl"
        torn.write_text("not json\n")
        trace = read_trace(torn)
        assert trace.truncated
        assert not trace.spans
        # ...but invalid JSON anywhere earlier is real corruption.
        bad = tmp_path / "bad.jsonl"
        bad.write_text('not json\n{"type": "manifest"}\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(bad)
        unknown = tmp_path / "unknown.jsonl"
        unknown.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            read_trace(unknown)

    def test_merge_renumbers_ids_and_sums_counters(self, tmp_path):
        paths = []
        for index in range(2):
            tracer = Tracer(manifest={"experiment": f"exp{index}"})
            with tracer.span("solve"):
                with tracer.span("linear_solve"):
                    pass
            tracer.counter("restarts", index + 1)
            paths.append(write_trace(tracer, tmp_path / f"shard{index}.jsonl"))
        merged = merge_traces(paths, tmp_path / "merged.jsonl")
        assert merged.counters["restarts"] == 3
        assert len(merged.spans) == 4
        ids = [span["id"] for span in merged.spans]
        assert sorted(ids) == [1, 2, 3, 4]  # one namespace, no collisions
        # Parent links stay shard-local and valid.
        for span in merged.spans:
            if span["parent"] is not None:
                parent = next(s for s in merged.spans if s["id"] == span["parent"])
                assert parent["source"] == span["source"]
        assert {span["source"] for span in merged.spans} == {"exp0", "exp1"}
        assert len(merged.manifest["shards"]) == 2
        # The merged file re-reads identically.
        reread = read_trace(tmp_path / "merged.jsonl")
        assert reread.counters == merged.counters
        assert len(reread.spans) == 4

    def test_merge_requires_input(self, tmp_path):
        with pytest.raises(ValueError):
            merge_traces([], tmp_path / "out.jsonl")


class TestSummary:
    def test_phase_rows_group_and_sum(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        for inner in (3, 5):
            with tracer.span("linear_solve", inner_iterations=inner):
                pass
        trace = read_trace(write_trace(tracer, tmp_path / "t.jsonl"))
        rows = phase_rows(trace)
        assert len(rows) == 1
        assert rows[0]["phase"] == "linear_solve"
        assert rows[0]["spans"] == 2
        assert rows[0]["inner iterations"] == 8

    def test_render_mentions_manifest_and_counters(self, tmp_path):
        tracer = Tracer(manifest={"command": "figure7", "seed": 0}, clock=FakeClock())
        with tracer.span("solve"):
            pass
        tracer.counter("hybrid_recoveries", 4)
        tracer.gauge("residual", 0.5)
        trace = read_trace(write_trace(tracer, tmp_path / "t.jsonl"))
        text = render_trace_summary(trace)
        assert "command=figure7" in text
        assert "per-phase breakdown" in text
        assert "hybrid_recoveries" in text
        assert "gauges" in text

    def test_render_empty_trace(self):
        from repro.trace import TraceFile

        text = render_trace_summary(TraceFile())
        assert "no spans" in text
