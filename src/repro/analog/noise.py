"""Noise and quantization processes of the analog datapath.

The paper attributes the accelerator's ~5 % solution error to "limited
ADC resolution" and "process variation and transistor mismatch, which
we control by calibrating all components on the analog datapath, though
the calibration precision is itself limited by DAC precision"
(Section 5.4). This module holds those error processes; their default
magnitudes are calibrated so the Figure 6 experiment measures the same
total RMS error the chip did (5.38 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel", "quantize_midrise"]


def quantize_midrise(values: np.ndarray, bits: int, full_scale: float) -> np.ndarray:
    """Uniform mid-rise quantization to ``bits`` over ``[-fs, +fs]``.

    Values outside full scale clip to the rails, the converter's
    saturation behaviour.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    if full_scale <= 0.0:
        raise ValueError("full_scale must be positive")
    values = np.asarray(values, dtype=float)
    levels = 2**bits
    step = 2.0 * full_scale / levels
    clipped = np.clip(values, -full_scale, full_scale - step)
    return (np.floor(clipped / step) + 0.5) * step


@dataclass(frozen=True)
class NoiseModel:
    """Error processes of one accelerator instance.

    Attributes
    ----------
    adc_bits / dac_bits:
        Converter resolutions; the prototype chips use 8-bit
        continuous-time converters (Figure 5).
    full_scale:
        Dynamic range of analog values, +-full_scale (Section 5.3 scales
        problems into this range).
    process_sigma:
        Relative sigma of as-fabricated component gain errors before
        calibration (process variation and transistor mismatch).
    residual_mismatch_sigma:
        Relative gain error remaining *after* calibration; bounded below
        by DAC precision since correction codes are DAC-quantized.
    residual_offset_sigma:
        Per-component input-referred offset remaining after calibration,
        in full-scale units. Offsets accumulate along the current-mode
        signal chain and dominate the chip's solution error.
    thermal_noise_sigma:
        Instantaneous additive noise on analog signals (per unit time).
    """

    adc_bits: int = 8
    dac_bits: int = 8
    full_scale: float = 1.0
    process_sigma: float = 0.05
    residual_mismatch_sigma: float = 0.02
    # Default tuned so the Figure 6 experiment (400 random 2x2 Burgers
    # stencils) measures the paper's 5.38 % total RMS solution error.
    residual_offset_sigma: float = 0.0235
    thermal_noise_sigma: float = 1e-4

    def __post_init__(self) -> None:
        if self.adc_bits <= 0 or self.dac_bits <= 0:
            raise ValueError("converter resolutions must be positive")
        if self.full_scale <= 0.0:
            raise ValueError("full_scale must be positive")
        for name in (
            "process_sigma",
            "residual_mismatch_sigma",
            "residual_offset_sigma",
            "thermal_noise_sigma",
        ):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be nonnegative")

    @classmethod
    def ideal(cls) -> "NoiseModel":
        """A hypothetical perfect accelerator (for ablation benches)."""
        return cls(
            adc_bits=32,
            dac_bits=32,
            process_sigma=0.0,
            residual_mismatch_sigma=0.0,
            residual_offset_sigma=0.0,
            thermal_noise_sigma=0.0,
        )

    def adc_read(self, values: np.ndarray) -> np.ndarray:
        """Quantize measured analog values through the ADC."""
        return quantize_midrise(values, self.adc_bits, self.full_scale)

    def dac_write(self, values: np.ndarray) -> np.ndarray:
        """Quantize programmed constants/initial conditions via DACs."""
        return quantize_midrise(values, self.dac_bits, self.full_scale)

    def saturate(self, values: np.ndarray) -> np.ndarray:
        """Rail analog values to the dynamic range."""
        return np.clip(values, -self.full_scale, self.full_scale)
