"""Tests for mixed-precision iterative refinement."""

import numpy as np
import pytest

from repro.linalg.refinement import mixed_precision_solve


def well_conditioned(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a + n * np.eye(n)


class TestMixedPrecision:
    def test_reaches_double_precision(self):
        a = well_conditioned(20, seed=0)
        x_true = np.random.default_rng(1).standard_normal(20)
        result = mixed_precision_solve(a, a @ x_true)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-12, atol=1e-12)

    def test_seed_is_single_precision_grade(self):
        # The raw float32 solve lands around 1e-6 relative accuracy —
        # the 'approximate seed' regime (vs the analog chip's ~5e-2).
        a = well_conditioned(30, seed=2)
        b = a @ np.ones(30)
        result = mixed_precision_solve(a, b)
        assert result.converged
        relative_seed = result.low_precision_residual / np.linalg.norm(b)
        assert 1e-9 < relative_seed < 1e-3
        assert result.residual_norm < 1e-11 * np.linalg.norm(b)

    def test_few_refinement_steps_suffice(self):
        # Quadratic-basin analogy: each refinement multiplies accuracy
        # by the seed quality, so a handful of steps finish the job.
        a = well_conditioned(25, seed=3)
        result = mixed_precision_solve(a, a @ np.arange(1.0, 26.0))
        assert result.converged
        assert result.refinement_steps <= 5

    def test_residual_history_decreases(self):
        a = well_conditioned(15, seed=4)
        result = mixed_precision_solve(a, np.ones(15))
        history = result.residual_history
        assert all(later < earlier for earlier, later in zip(history, history[1:]))

    def test_singular_matrix_reported(self):
        a = np.ones((4, 4))
        result = mixed_precision_solve(a, np.ones(4))
        assert not result.converged

    def test_ill_conditioned_stagnates_honestly(self):
        # Condition beyond ~1/eps32: the float32 factor cannot contract
        # the error; the solver must report failure, not loop forever.
        a = np.diag(np.logspace(0.0, 12.0, 10))
        rng = np.random.default_rng(5)
        q, _ = np.linalg.qr(rng.standard_normal((10, 10)))
        a = q @ a @ q.T
        result = mixed_precision_solve(a, np.ones(10), max_refinements=20)
        assert result.refinement_steps <= 20
        if not result.converged:
            assert result.residual_norm > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mixed_precision_solve(np.ones((2, 3)), np.ones(2))
        with pytest.raises(ValueError):
            mixed_precision_solve(np.eye(2), np.ones(3))
        with pytest.raises(ValueError):
            mixed_precision_solve(np.eye(2), np.ones(2), tol=0.0)

    def test_structural_identity_with_hybrid_pipeline(self):
        # The shared shape: an approximate seed (here float32, in the
        # paper analog) followed by a short exact polish. Measured as:
        # polish steps from the seed are far fewer than solving from
        # scratch with Richardson iteration at the same tolerance.
        a = well_conditioned(20, seed=6)
        b = a @ np.linspace(-1.0, 1.0, 20)
        refined = mixed_precision_solve(a, b)
        assert refined.converged
        assert refined.refinement_steps <= 4
