#!/usr/bin/env python
"""Validate every committed ``BENCH_<n>.json`` against the bench schema.

    python scripts/validate_bench_reports.py
    python scripts/validate_bench_reports.py path/to/repo

The committed bench trajectory is only a trustworthy perf baseline if
every snapshot in it parses and conforms to the schema — a truncated or
hand-edited report would otherwise surface much later as a confusing
regression-gate failure. CI runs this on every push; it walks the
repository root for ``BENCH_<n>.json`` files, runs each through
:func:`repro.bench.schema.validate_report` *and* a full
:meth:`repro.bench.schema.BenchReport.load` round trip, and fails on
the first file with problems.

Exit codes: 0 every report valid, 1 at least one invalid report,
2 no reports found (a repo with a committed trajectory should never
see this — it means the glob looked in the wrong directory).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.schema import (  # noqa: E402  (path bootstrap above)
    BenchReport,
    list_bench_files,
    validate_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root",
        nargs="?",
        default=".",
        help="directory holding the committed BENCH_<n>.json files (default: .)",
    )
    args = parser.parse_args(argv)

    indexed = list_bench_files(args.root)
    if not indexed:
        print(f"no BENCH_<n>.json reports found under {args.root!r}", file=sys.stderr)
        return 2
    failures = 0
    for _, path in indexed:
        problems = []
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            problems = [f"unreadable: {exc}"]
        else:
            problems = validate_report(raw)
        if not problems:
            try:  # the loader applies stricter coercions than the validator
                BenchReport.load(path)
            except ValueError as exc:
                problems = [str(exc)]
        if problems:
            failures += 1
            print(f"INVALID {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok      {path}")
    if failures:
        print(f"{failures} invalid bench report(s)", file=sys.stderr)
        return 1
    print(f"all {len(indexed)} bench report(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
