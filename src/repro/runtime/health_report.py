"""The ``health-report`` driver: watch one board age across solves.

Runs a sequence of Burgers problems through a :class:`DegradationLadder`
whose accelerator carries an (optional) degradation model, and renders
what the health layer saw: per-solve ladder verdicts alongside the
:class:`~repro.analog.health.HealthMonitor`'s tile statistics,
quarantine decisions, and reconciliation counters. With no degradation
the report is the healthy-board baseline (every solve on the hybrid
rung, no flags); with drift it is the full story the chaos tier
asserts — gate rejections, ladder demotions, quarantines, and the
recalibration that restores hybrid-rung service.

Everything is seeded, so the report is bitwise reproducible — the CLI's
golden-file test pins it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analog.engine import AnalogAccelerator
from repro.analog.health import DegradationModel
from repro.reporting import ascii_table
from repro.runtime.api import ProblemSpec
from repro.runtime.ladder import DegradationLadder
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["HealthReportResult", "run_health_report"]


@dataclass
class HealthReportResult:
    """Per-solve ladder verdicts plus the monitor's final report."""

    rows: List[dict]
    health_report: str
    solves: int
    degradation_active: bool

    def render(self) -> str:
        header = (
            f"health report: {self.solves} solve(s), degradation "
            f"{'on' if self.degradation_active else 'off'}"
        )
        return "\n\n".join([header, ascii_table(self.rows), self.health_report])


def run_health_report(
    solves: int = 8,
    grid_n: int = 2,
    reynolds: float = 1.0,
    seed: int = 0,
    degradation: Optional[DegradationModel] = None,
    analog_time_limit: float = 60.0,
    tracer: Optional[TracerLike] = None,
) -> HealthReportResult:
    """Age one board across ``solves`` Burgers solves and report.

    The accelerator (die seeded by ``seed``) persists across the whole
    sequence, so the monitor's EWMAs, quarantine and recalibration
    state accumulate exactly as they would in a long-lived service.
    """
    if solves < 1:
        raise ValueError("solves must be at least 1")
    tracer = as_tracer(tracer)
    accelerator = AnalogAccelerator(seed=seed, degradation=degradation)
    ladder = DegradationLadder(accelerator=accelerator)
    monitor = accelerator.health
    rows: List[dict] = []
    with tracer.span("health_report", solves=solves, grid_n=grid_n):
        for index in range(solves):
            system, guess = ProblemSpec.burgers(
                grid_n=grid_n, reynolds=reynolds, seed=seed + index
            ).build()
            result = ladder.solve(
                system,
                initial_guess=guess,
                analog_time_limit=analog_time_limit,
                tracer=tracer,
            )
            rows.append(
                {
                    "solve": index,
                    "rung": result.rung or "-",
                    "converged": "yes" if result.converged else "no",
                    "rungs tried": ">".join(result.rungs_tried),
                    "residual": f"{result.residual_norm:.1e}",
                    "rejected": monitor.seeds_rejected,
                    "quarantined": len(monitor.quarantined),
                    "recals": monitor.recalibrations,
                }
            )
    return HealthReportResult(
        rows=rows,
        health_report=monitor.render_report(),
        solves=solves,
        degradation_active=degradation is not None and degradation.active,
    )
