"""Tests for the Davidenko-ODE homotopy tracker."""

import numpy as np
import pytest

from repro.nonlinear.homotopy import davidenko_solve, homotopy_solve
from repro.nonlinear.systems import (
    CallableSystem,
    CoupledQuadraticSystem,
    SimpleSquareSystem,
)


class TestDavidenkoSolve:
    def test_tracks_to_hard_root(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        result = davidenko_solve(simple, hard, np.array([1.0, 1.0]))
        assert result.converged
        assert hard.residual_norm(result.u) < 1e-10

    def test_agrees_with_discrete_tracker(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(0.5, 1.5)
        for start in ([1.0, 1.0], [1.0, -1.0]):
            ode = davidenko_solve(simple, hard, np.array(start))
            discrete = homotopy_solve(simple, hard, np.array(start))
            if ode.converged and discrete.converged and discrete.jumps == 0:
                np.testing.assert_allclose(ode.u, discrete.u, atol=1e-6)

    def test_unpolished_endpoint_is_approximate(self):
        # Without the digital polish the ODE endpoint carries the
        # integrator's tolerance — the analog regime.
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        raw = davidenko_solve(
            simple, hard, np.array([1.0, 1.0]), polish=False, rtol=1e-5, atol=1e-7,
            residual_tolerance=1e-2,
        )
        polished = davidenko_solve(simple, hard, np.array([1.0, 1.0]), polish=True)
        assert raw.converged
        assert polished.residual_norm <= raw.residual_norm

    def test_corrector_gain_attracts_to_root_manifold(self):
        # The pure Davidenko ODE CONSERVES the homotopy residual: a
        # start off the root manifold stays off by the same amount. The
        # corrector makes the manifold attracting, so the same bad
        # start decays onto it — the property that makes the analog
        # implementation robust to imperfect initial conditions.
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        off_manifold_start = np.array([1.3, 0.8])
        conserving = davidenko_solve(
            simple,
            hard,
            off_manifold_start,
            corrector_gain=0.0,
            polish=False,
            residual_tolerance=np.inf,
        )
        corrected = davidenko_solve(
            simple,
            hard,
            off_manifold_start,
            corrector_gain=20.0,
            polish=False,
            residual_tolerance=np.inf,
        )
        assert conserving.residual_norm > 0.1
        assert corrected.residual_norm < 1e-6

    def test_scalar_shifted_root(self):
        simple = SimpleSquareSystem(1)
        hard = CallableSystem(
            1,
            residual=lambda u: np.array([u[0] ** 2 - 2.0 * u[0] - 3.0]),
            jacobian=lambda u: np.array([[2.0 * u[0] - 2.0]]),
        )
        plus = davidenko_solve(simple, hard, np.array([1.0]))
        minus = davidenko_solve(simple, hard, np.array([-1.0]))
        assert plus.converged and minus.converged
        assert plus.u[0] == pytest.approx(3.0, abs=1e-8)
        assert minus.u[0] == pytest.approx(-1.0, abs=1e-8)

    def test_fold_path_survives_via_regularization(self):
        # Starts whose real path folds: the regularized flow plus
        # corrector must still land on one of the surviving roots.
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        result = davidenko_solve(simple, hard, np.array([-1.0, 1.0]))
        if result.converged:
            assert hard.residual_norm(result.u) < 1e-6

    def test_validation(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        with pytest.raises(ValueError):
            davidenko_solve(simple, hard, np.zeros(3))
        with pytest.raises(ValueError):
            davidenko_solve(simple, hard, np.ones(2), corrector_gain=-1.0)

    def test_rhs_evaluation_count_reported(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        result = davidenko_solve(simple, hard, np.array([1.0, 1.0]))
        assert result.rhs_evaluations > 0
