"""Fleet-scale analog board management.

The layer between PR 4's single aging board and the north star's
"many users, many boards" story: a fleet of independently-seeded
boards, health-aware routing, board-granularity quarantine with
pressure-triggered recalibration, a predictive seed gate that vetoes
doomed analog settles before paying for them, and a structured
fleet-exhausted fallback (straight to damped Newton) when no healthy
board exists. See :mod:`repro.fleet.scheduler` for the state machine
and :mod:`repro.fleet.gate` for the gating math.
"""

from repro.fleet.board import AnalogBoard, BoardAssignment
from repro.fleet.gate import PredictiveSeedGate, problem_conditioning
from repro.fleet.scheduler import AnalogFleet, FleetConfig, FleetScheduler

__all__ = [
    "AnalogBoard",
    "AnalogFleet",
    "BoardAssignment",
    "FleetConfig",
    "FleetScheduler",
    "PredictiveSeedGate",
    "problem_conditioning",
]
