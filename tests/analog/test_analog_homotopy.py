"""Tests for homotopy continuation executed on the analog model."""

import numpy as np
import pytest

from repro.analog.engine import AnalogAccelerator
from repro.analog.noise import NoiseModel
from repro.nonlinear.systems import CoupledQuadraticSystem, SimpleSquareSystem


class TestAnalogHomotopy:
    def test_tracks_to_approximate_hard_root(self):
        accelerator = AnalogAccelerator(seed=0)
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        result = accelerator.solve_with_homotopy(simple, hard, np.array([1.0, 1.0]))
        assert result.converged
        roots = hard.real_roots()
        distance = min(np.linalg.norm(result.solution - r) for r in roots)
        # Analog-grade accuracy: percent-level of the scaled range.
        assert distance < 0.5

    def test_all_four_starts_land_near_true_roots(self):
        # The Section 3.2 chip result: every simple root tracks to a
        # correct solution (possibly after a fold hop).
        accelerator = AnalogAccelerator(seed=1)
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        roots = hard.real_roots()
        landed = 0
        for start in simple.roots():
            result = accelerator.solve_with_homotopy(simple, hard, start)
            if result.converged:
                distance = min(np.linalg.norm(result.solution - r) for r in roots)
                if distance < 0.6:
                    landed += 1
        assert landed >= 2

    def test_ideal_hardware_is_accurate(self):
        accelerator = AnalogAccelerator(noise=NoiseModel.ideal(), seed=2)
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        result = accelerator.solve_with_homotopy(simple, hard, np.array([1.0, 1.0]))
        assert result.converged
        roots = hard.real_roots()
        distance = min(np.linalg.norm(result.solution - r) for r in roots)
        assert distance < 1e-2

    def test_dimension_mismatch_rejected(self):
        accelerator = AnalogAccelerator(seed=3)
        with pytest.raises(ValueError):
            accelerator.solve_with_homotopy(
                SimpleSquareSystem(3), CoupledQuadraticSystem(1.0, 1.0), np.ones(3)
            )
