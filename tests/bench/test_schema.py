"""BENCH_<n>.json schema: round-trips, validation, file numbering."""

import json

import pytest

from repro.bench.schema import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    BenchmarkResult,
    bench_index,
    latest_bench_path,
    list_bench_files,
    next_bench_path,
    validate_report,
)


def make_result(name="kernel_micro", **overrides):
    base = dict(
        name=name,
        wall_seconds=1.25,
        span_seconds={"linear_solve": 0.75, "stencil_assembly": 0.25},
        span_counts={"linear_solve": 40, "stencil_assembly": 40},
        counters={"matvecs": 400.0},
        work={"inner_iterations": 360.0, "preconditioner_builds": 1.0},
        peak_rss_kb=131072,
        params={"grid_n": 16, "seed": 0},
    )
    base.update(overrides)
    return BenchmarkResult(**base)


def make_report(**overrides):
    fields = dict(
        scale="smoke",
        seed=0,
        manifest={"type": "manifest", "command": "bench", "repro_version": "0.0"},
        benchmarks={"kernel_micro": make_result()},
    )
    fields.update(overrides)
    return BenchReport(**fields)


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        report = make_report()
        doc = json.loads(json.dumps(report.to_dict()))
        again = BenchReport.from_dict(doc)
        assert again.to_dict() == report.to_dict()
        assert again.scale == "smoke"
        assert again.seed == 0
        assert again.bench_schema == BENCH_SCHEMA_VERSION
        bench = again.benchmarks["kernel_micro"]
        assert bench.wall_seconds == pytest.approx(1.25)
        assert bench.span_counts["linear_solve"] == 40
        assert bench.peak_rss_kb == 131072

    def test_save_load_round_trip(self, tmp_path):
        report = make_report()
        path = report.save(tmp_path / "BENCH_1.json")
        assert path.exists()
        again = BenchReport.load(path)
        assert again.to_dict() == report.to_dict()

    def test_load_rejects_broken_json(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text('{"bench_schema": 1,')
        with pytest.raises(ValueError, match="not valid JSON"):
            BenchReport.load(path)

    def test_metric_dotted_lookup(self):
        bench = make_result()
        assert bench.metric("wall_seconds") == pytest.approx(1.25)
        assert bench.metric("peak_rss_kb") == pytest.approx(131072.0)
        assert bench.metric("span_seconds.linear_solve") == pytest.approx(0.75)
        assert bench.metric("span_counts.linear_solve") == pytest.approx(40.0)
        assert bench.metric("work.inner_iterations") == pytest.approx(360.0)
        assert bench.metric("counters.matvecs") == pytest.approx(400.0)
        assert bench.metric("work.absent") is None
        assert bench.metric("nonsense.key") is None

    def test_render_mentions_every_benchmark(self):
        text = make_report().render()
        assert "kernel_micro" in text
        assert "scale=smoke" in text


class TestValidation:
    def test_valid_report_has_no_problems(self):
        assert validate_report(make_report().to_dict()) == []

    def test_non_dict_rejected(self):
        assert validate_report([1, 2, 3])

    def test_missing_schema_rejected(self):
        doc = make_report().to_dict()
        del doc["bench_schema"]
        assert any("bench_schema" in problem for problem in validate_report(doc))

    def test_newer_schema_rejected(self):
        doc = make_report().to_dict()
        doc["bench_schema"] = BENCH_SCHEMA_VERSION + 1
        assert any("newer" in problem for problem in validate_report(doc))

    def test_name_key_disagreement_rejected(self):
        doc = make_report().to_dict()
        doc["benchmarks"]["kernel_micro"]["name"] = "other"
        assert any("disagrees" in problem for problem in validate_report(doc))

    def test_negative_wall_rejected(self):
        doc = make_report().to_dict()
        doc["benchmarks"]["kernel_micro"]["wall_seconds"] = -1.0
        assert any("wall_seconds" in problem for problem in validate_report(doc))

    def test_non_numeric_work_rejected(self):
        doc = make_report().to_dict()
        doc["benchmarks"]["kernel_micro"]["work"]["inner_iterations"] = "lots"
        assert any("inner_iterations" in problem for problem in validate_report(doc))

    def test_empty_benchmarks_rejected(self):
        doc = make_report().to_dict()
        doc["benchmarks"] = {}
        assert any("benchmarks" in problem for problem in validate_report(doc))

    def test_from_dict_raises_on_invalid(self):
        with pytest.raises(ValueError, match="invalid bench report"):
            BenchReport.from_dict({"bench_schema": 1})


class TestTrajectoryNumbering:
    def test_bench_index(self):
        assert bench_index("BENCH_6.json") == 6
        assert bench_index("/some/dir/BENCH_12.json") == 12
        assert bench_index("BENCH_x.json") is None
        assert bench_index("NOTBENCH_1.json") is None
        assert bench_index("BENCH_1.json.bak") is None

    def test_numbering_in_empty_dir_starts_at_one(self, tmp_path):
        assert list_bench_files(tmp_path) == []
        assert latest_bench_path(tmp_path) is None
        assert next_bench_path(tmp_path).name == "BENCH_1.json"

    def test_numbering_is_numeric_not_lexicographic(self, tmp_path):
        for index in (2, 10):
            (tmp_path / f"BENCH_{index}.json").write_text("{}")
        (tmp_path / "BENCH_nope.json").write_text("{}")
        files = list_bench_files(tmp_path)
        assert [index for index, _ in files] == [2, 10]
        assert latest_bench_path(tmp_path).name == "BENCH_10.json"
        assert next_bench_path(tmp_path).name == "BENCH_11.json"
