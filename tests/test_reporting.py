"""Tests for the reporting helpers."""

from repro.linalg.kernel import LinearSolverStats
from repro.reporting import (
    Comparison,
    ascii_table,
    render_comparisons,
    render_kernel_stats,
)


class TestAsciiTable:
    def test_basic_layout(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 2.25}]
        text = ascii_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_empty(self):
        assert ascii_table([]) == "(empty table)"

    def test_column_selection_and_missing_cells(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = ascii_table(rows, columns=["a", "b"])
        assert "2" in text
        assert text.count("|") >= 3

    def test_float_formatting(self):
        rows = [{"x": 0.000123456}, {"x": 123456.0}, {"x": 0.0}]
        text = ascii_table(rows)
        assert "1.235e-04" in text
        assert "1.235e+05" in text
        assert "\n0" in text or "| 0" in text or text.endswith("0")

    def test_alignment_consistent(self):
        rows = [{"col": "short"}, {"col": "a much longer cell"}]
        text = ascii_table(rows)
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1  # fixed-width layout


class TestComparisons:
    def test_render(self):
        comparisons = [
            Comparison(
                experiment="Figure 9",
                quantity="time speedup at 32x32",
                paper_value="5.7x",
                measured_value="8.1x",
                holds=True,
                note="shape holds",
            ),
            Comparison(
                experiment="Figure 6",
                quantity="RMS error",
                paper_value="5.38%",
                measured_value="5.3%",
                holds=True,
            ),
        ]
        text = render_comparisons(comparisons)
        assert "Figure 9" in text
        assert "5.7x" in text
        assert "yes" in text

    def test_violations_flagged(self):
        text = render_comparisons(
            [
                Comparison(
                    experiment="X",
                    quantity="q",
                    paper_value="1",
                    measured_value="100",
                    holds=False,
                )
            ]
        )
        assert "NO" in text


class TestRenderKernelStats:
    def test_untouched_stats_render_empty(self):
        assert render_kernel_stats(None) == ""
        assert render_kernel_stats(LinearSolverStats()) == ""

    def test_renders_label_and_counters(self):
        stats = LinearSolverStats(
            solves=6, inner_iterations=42, matvecs=90, preconditioner_builds=2
        )
        text = render_kernel_stats(stats, label="digital linear kernel")
        assert text.startswith("digital linear kernel:")
        assert "preconditioner builds" in text
        assert "42" in text and "90" in text
