"""Tests for the equation compiler, scaling, and area/power models."""

import numpy as np
import pytest

from repro.analog.area_power import (
    AreaPowerModel,
    TABLE3_AREA_MM2,
    TABLE3_POWER_UW,
    scaled_accelerator_table,
    table3_totals,
)
from repro.analog.compiler import ResourceCount, compile_burgers, compile_system
from repro.analog.fabric import Fabric, FabricCapacityError
from repro.analog.noise import NoiseModel
from repro.analog.scaling import ScaledSystem, required_scale
from repro.nonlinear.newton import newton_solve
from repro.nonlinear.systems import CoupledQuadraticSystem
from repro.pde.burgers import random_burgers_system


class TestCompiler:
    def test_generic_system_allocates_one_tile_per_variable(self):
        fabric = Fabric(num_chips=1)
        compiled = compile_system(fabric, CoupledQuadraticSystem(1.0, 1.0))
        assert len(compiled.tiles) == 2
        assert compiled.equation_gain_errors().shape == (2,)

    def test_burgers_2x2_fills_prototype_board(self):
        fabric = Fabric(num_chips=2)
        system, _ = random_burgers_system(2, 1.0, np.random.default_rng(0))
        compiled = compile_burgers(fabric, system)
        assert len(compiled.tiles) == 8
        assert not fabric.free_tiles()
        # Cross-field coupling is board-level: 2 per node.
        assert compiled.board_level_connections == 8

    def test_capacity_error_when_too_big(self):
        fabric = Fabric(num_chips=2)
        system, _ = random_burgers_system(3, 1.0, np.random.default_rng(0))  # 18 vars
        with pytest.raises(FabricCapacityError):
            compile_burgers(fabric, system)

    def test_release_frees_tiles(self):
        fabric = Fabric(num_chips=1)
        compiled = compile_system(fabric, CoupledQuadraticSystem(1.0, 1.0))
        compiled.release()
        assert len(fabric.free_tiles()) == 4


class TestResourceCount:
    def test_table3_component_totals(self):
        # The per-variable totals of Table 3 of the paper.
        resources = ResourceCount()
        assert resources.per_variable_total("integrator") == 2
        assert resources.per_variable_total("fanout") == 8
        assert resources.per_variable_total("multiplier") == 8
        assert resources.per_variable_total("DAC") == 4

    def test_table3_role_split(self):
        resources = ResourceCount()
        assert resources.role_counts("multiplier") == (4, 3, 1, 0)
        assert resources.role_counts("integrator") == (0, 0, 1, 1)

    def test_usage_fits_tile_inventory(self):
        # A tile must physically hold one variable's allocation.
        resources = ResourceCount()
        assert resources.per_variable_total("integrator") <= 4
        assert resources.per_variable_total("multiplier") <= 8
        assert resources.per_variable_total("fanout") <= 8
        assert resources.per_variable_total("DAC") <= 4


class TestScaling:
    def test_scaled_root_maps_back(self):
        system = CoupledQuadraticSystem(1.0, 1.0)
        scaled = ScaledSystem(system, scale=3.0)
        result = newton_solve(scaled, np.array([0.3, 0.3]))
        assert result.converged
        physical = scaled.to_physical(result.u)
        assert system.residual_norm(physical) < 1e-8

    def test_scaled_values_stay_in_unit_range(self):
        # Random Burgers with +-3 constants: scaled residual at a
        # scaled-range state stays within ~1.
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(1))
        scale = required_scale(3.0, NoiseModel())
        scaled = ScaledSystem(system, scale)
        w = scaled.to_scaled(guess)
        assert np.max(np.abs(w)) <= 1.0
        assert np.max(np.abs(scaled.residual(w))) <= 1.5

    def test_jacobian_scaling_consistent_with_fd(self):
        from repro.nonlinear.systems import check_jacobian

        system = CoupledQuadraticSystem(0.5, -0.5)
        scaled = ScaledSystem(system, scale=2.5)
        check_jacobian(scaled, np.array([0.2, -0.3]), rtol=1e-4, atol=1e-5)

    def test_required_scale_floor_is_one(self):
        assert required_scale(0.1, NoiseModel()) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            required_scale(-1.0, NoiseModel())
        with pytest.raises(ValueError):
            required_scale(1.0, NoiseModel(), safety=0.5)
        with pytest.raises(ValueError):
            ScaledSystem(CoupledQuadraticSystem(), scale=0.0)


class TestAreaPower:
    def test_table4_values_reproduced(self):
        # Paper Table 4 rows, within 1%.
        expected = {
            1: (1.38, 1.53),
            2: (5.50, 6.10),
            4: (22.02, 24.42),
            8: (88.06, 97.66),
            16: (352.36, 390.66),
        }
        model = AreaPowerModel()
        for n, (area, power) in expected.items():
            assert model.chip_area_mm2(n) == pytest.approx(area, rel=0.01)
            assert model.peak_power_mw(n) == pytest.approx(power, rel=0.01)

    def test_table_rows(self):
        rows = scaled_accelerator_table()
        assert len(rows) == 5
        assert rows[0]["solver size"] == "1 x 1"
        assert rows[-1]["chip area (mm^2)"] == pytest.approx(352.36, rel=0.01)

    def test_power_density_far_below_cpu(self):
        # CPUs run ~50-100 W/cm^2; the paper claims ~400x lower.
        model = AreaPowerModel()
        assert model.power_density_w_per_cm2(16) < 1.0

    def test_run_energy(self):
        model = AreaPowerModel()
        energy = model.run_energy_joules(16, settle_seconds=1e-4)
        assert 0.0 < energy < 1e-3

    def test_table3_rows_contain_area_and_power(self):
        rows = table3_totals(ResourceCount())
        area_row = [r for r in rows if r["component"] == "total area (mm^2)"][0]
        assert area_row["total"] == pytest.approx(sum(TABLE3_AREA_MM2.values()), rel=1e-6)
        power_row = [r for r in rows if r["component"] == "total power (uW)"][0]
        assert power_row["total"] == pytest.approx(sum(TABLE3_POWER_UW.values()), rel=1e-6)

    def test_validation(self):
        model = AreaPowerModel()
        with pytest.raises(ValueError):
            model.chip_area_mm2(0)
        with pytest.raises(ValueError):
            model.run_energy_joules(2, settle_seconds=-1.0)
        with pytest.raises(ValueError):
            model.run_energy_joules(2, settle_seconds=1.0, activity_factor=0.0)
