"""Table 5: summary of recent prototyped analog accelerators.

A qualitative feature matrix; we reproduce it as structured data and
cross-check the "this work" row against what this library actually
implements (each claimed capability maps to a module that exists).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import List

from repro.reporting import ascii_table

__all__ = ["Table5Result", "run_table5"]

_ROWS = [
    {
        "work": "this work",
        "DE types": "nonlinear parabolic PDEs",
        "problem abstraction": "Newton solver and homotopy continuation inside digital solvers",
        "programming model": "user configures nonlinear function and Jacobian for Newton solver",
        "analog-digital interaction": "digital decomposition using red-black Gauss-Seidel; analog solution seeds digital Newton",
        "microarchitecture features": "multi-chip integration; enhanced calibration for all analog blocks",
        "implementing modules": "repro.nonlinear.continuous_newton, repro.nonlinear.homotopy, repro.core.gauss_seidel, repro.core.hybrid, repro.analog.fabric, repro.analog.calibration",
    },
    {
        "work": "[22, 23] (ISCA'16 / IEEE Micro'17)",
        "DE types": "linear elliptic PDEs",
        "problem abstraction": "sparse linear algebra inside digital solvers",
        "programming model": "user provides linear equation coefficients and constants",
        "analog-digital interaction": "digital decomposition using multigrid; analog solves recursively on linear equation residual",
        "microarchitecture features": "automatic calibration; continuous-time ADC, lookup table, DACs; 65nm CMOS",
        "implementing modules": "repro.linalg.gradient_flow, repro.pde.poisson",
    },
    {
        "work": "[18, 19] (ESSCIRC'15 / JSSC'16)",
        "DE types": "nonlinear system of ODEs",
        "problem abstraction": "direct mapping of ODE to analog hardware",
        "programming model": "user configures analog datapath for ODE",
        "analog-digital interaction": "digital provides continuous-time lookup for nonlinear functions",
        "microarchitecture features": "(tile microarchitecture basis of this work)",
        "implementing modules": "repro.ode, repro.analog.components",
    },
    {
        "work": "[11, 12] (ISSCC'05 / JSSC'06)",
        "DE types": "nonlinear ODEs, linear parabolic, stochastic PDEs",
        "problem abstraction": "direct mapping of ODE or PDE to analog hardware",
        "programming model": "user configures analog datapath for ODE or PDE",
        "analog-digital interaction": "analog solution seeds digital Newton",
        "microarchitecture features": "calibration only for integrators; 250nm CMOS",
        "implementing modules": "repro.core.hybrid (seeding concept)",
    },
]


@dataclass
class Table5Result:
    rows_data: List[dict]

    def rows(self) -> List[dict]:
        return self.rows_data

    def render(self) -> str:
        columns = ["work", "DE types", "problem abstraction", "analog-digital interaction"]
        return ascii_table(self.rows_data, columns=columns)

    def verify_module_claims(self) -> List[str]:
        """Import every module each row claims; return missing ones."""
        missing = []
        for row in self.rows_data:
            for module in row["implementing modules"].split(","):
                name = module.strip()
                if not name.startswith("repro"):
                    continue
                base = name.split(" ")[0]
                try:
                    importlib.import_module(base)
                except ImportError:
                    missing.append(base)
        return missing


def run_table5() -> Table5Result:
    return Table5Result(rows_data=[dict(row) for row in _ROWS])
