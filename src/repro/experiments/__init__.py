"""Experiment drivers: one module per paper table and figure.

Each driver exposes a ``run_*`` function returning a structured result
object with a ``rows()``/``render()`` view matching what the paper
reports, plus the paper's own numbers for comparison. The benchmark
harness under ``benchmarks/`` calls these drivers; EXPERIMENTS.md
records a full-size run.
"""

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.capacity import run_capacity
from repro.experiments.parallel import run_parallel_sweep
from repro.experiments.trajectory import run_trajectory

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure2",
    "run_figure3",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_capacity",
    "run_parallel_sweep",
    "run_trajectory",
]
