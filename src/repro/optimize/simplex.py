"""A from-scratch two-phase dense simplex solver.

Solves standard-form linear programs

    minimize    c^T x
    subject to  A x = b,  x >= 0

with the tableau method and Bland's anti-cycling rule. This is the
*digital exact* baseline of the LP extension: deterministic pivoting,
exact vertices — and per-pivot cost that the hybrid pipeline's
analog-seeded route avoids (see :mod:`repro.optimize.hybrid_lp`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["LinearProgram", "SimplexResult", "simplex_solve"]

_TOL = 1e-9


@dataclass(frozen=True)
class LinearProgram:
    """Standard-form LP data with validation and conveniences."""

    c: np.ndarray
    a: np.ndarray
    b: np.ndarray

    def __post_init__(self) -> None:
        c = np.asarray(self.c, dtype=float)
        a = np.asarray(self.a, dtype=float)
        b = np.asarray(self.b, dtype=float)
        if a.ndim != 2:
            raise ValueError("A must be a matrix")
        if c.shape != (a.shape[1],):
            raise ValueError(f"c must have length {a.shape[1]}")
        if b.shape != (a.shape[0],):
            raise ValueError(f"b must have length {a.shape[0]}")
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    @property
    def num_constraints(self) -> int:
        return self.a.shape[0]

    @property
    def num_variables(self) -> int:
        return self.a.shape[1]

    def objective(self, x: np.ndarray) -> float:
        return float(self.c @ np.asarray(x, dtype=float))

    def is_feasible(self, x: np.ndarray, tol: float = 1e-7) -> bool:
        x = np.asarray(x, dtype=float)
        return bool(
            np.all(x >= -tol) and np.linalg.norm(self.a @ x - self.b) <= tol * max(1.0, np.linalg.norm(self.b))
        )

    @classmethod
    def from_inequalities(cls, c, a_ub, b_ub) -> "LinearProgram":
        """Convert ``min c^T x  s.t.  A_ub x <= b_ub, x >= 0`` to
        standard form by appending slack variables."""
        c = np.asarray(c, dtype=float)
        a_ub = np.asarray(a_ub, dtype=float)
        b_ub = np.asarray(b_ub, dtype=float)
        m = a_ub.shape[0]
        return cls(
            c=np.concatenate([c, np.zeros(m)]),
            a=np.hstack([a_ub, np.eye(m)]),
            b=b_ub,
        )


@dataclass
class SimplexResult:
    """Outcome of a simplex solve."""

    x: np.ndarray
    objective: float
    status: str  # "optimal", "infeasible", "unbounded"
    pivots: int
    basis: List[int]

    @property
    def optimal(self) -> bool:
        return self.status == "optimal"


def _pivot(tableau: np.ndarray, basis: List[int], row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > 0.0:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(tableau: np.ndarray, basis: List[int], num_vars: int, max_pivots: int):
    """Iterate Bland-rule pivots on a tableau whose last row is the
    (negated-reduced-cost) objective and last column is the RHS."""
    pivots = 0
    while pivots < max_pivots:
        costs = tableau[-1, :num_vars]
        entering_candidates = np.nonzero(costs < -_TOL)[0]
        if entering_candidates.size == 0:
            return "optimal", pivots
        col = int(entering_candidates[0])  # Bland: smallest index
        column = tableau[:-1, col]
        rhs = tableau[:-1, -1]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(column > _TOL, rhs / column, np.inf)
        if not np.any(np.isfinite(ratios)):
            return "unbounded", pivots
        best = np.min(ratios)
        # Bland tie-break: smallest basis index among the minimizers.
        rows = np.nonzero(np.abs(ratios - best) <= _TOL * max(1.0, best))[0]
        row = int(min(rows, key=lambda r: basis[r]))
        _pivot(tableau, basis, row, col)
        pivots += 1
    return "stalled", pivots


def simplex_solve(problem: LinearProgram, max_pivots: int = 10_000) -> SimplexResult:
    """Two-phase simplex: artificial variables find a basic feasible
    point, then the true objective is optimized."""
    a = problem.a.copy()
    b = problem.b.copy()
    # Normalize to b >= 0 for phase 1.
    negative = b < 0.0
    a[negative] *= -1.0
    b[negative] *= -1.0
    m, n = a.shape

    # Phase 1 tableau: [A | I | b], minimize sum of artificials.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    # Objective row: sum of artificial rows (reduced costs of phase 1).
    tableau[-1, : n + m] = -np.sum(tableau[:m, : n + m], axis=0)
    tableau[-1, n : n + m] = 0.0
    tableau[-1, -1] = -np.sum(b)
    basis = list(range(n, n + m))

    status, phase1_pivots = _run_simplex(tableau, basis, n + m, max_pivots)
    phase1_value = -tableau[-1, -1]
    if status != "optimal" or phase1_value > 1e-7 * max(1.0, float(np.sum(b))):
        return SimplexResult(
            x=np.zeros(n), objective=float("nan"), status="infeasible", pivots=phase1_pivots, basis=basis
        )

    # Drive any artificial variables out of the basis where possible.
    for row in range(m):
        if basis[row] >= n:
            candidates = np.nonzero(np.abs(tableau[row, :n]) > _TOL)[0]
            if candidates.size:
                _pivot(tableau, basis, row, int(candidates[0]))

    # Phase 2: drop artificial columns, install the true objective.
    tableau2 = np.zeros((m + 1, n + 1))
    tableau2[:m, :n] = tableau[:m, :n]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[-1, :n] = problem.c
    # Make reduced costs of basic variables zero.
    for row, var in enumerate(basis):
        if var < n and abs(tableau2[-1, var]) > 0.0:
            tableau2[-1] -= tableau2[-1, var] * tableau2[row]
    status, phase2_pivots = _run_simplex(tableau2, basis, n, max_pivots)
    x = np.zeros(n)
    for row, var in enumerate(basis):
        if var < n:
            x[var] = tableau2[row, -1]
    if status == "unbounded":
        return SimplexResult(
            x=x, objective=float("-inf"), status="unbounded", pivots=phase1_pivots + phase2_pivots, basis=basis
        )
    return SimplexResult(
        x=x,
        objective=problem.objective(x),
        status="optimal" if status == "optimal" else status,
        pivots=phase1_pivots + phase2_pivots,
        basis=basis,
    )
