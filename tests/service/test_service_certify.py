"""Service-level certification: certify plumbs to every shard, canary
sweeps run between windows, and drifting boards are benched before
traffic — without perturbing clean-board determinism."""

import pytest

from repro.analog.health import DegradationModel
from repro.fleet import FleetConfig
from repro.runtime import ProblemSpec, RetryPolicy, SolveRequest
from repro.service import SolveService, serve_requests

HOT = DegradationModel(offset_drift_sigma=1.0, seed=7)
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0)


def _requests(n, prefix="sc"):
    return [
        SolveRequest(
            f"{prefix}-{i:04d}",
            ProblemSpec.quadratic(1.0 + 0.05 * i, 1.0),
            analog_time_limit=0.5,
        )
        for i in range(n)
    ]


class TestServiceCertify:
    def test_certified_service_attaches_passing_certificates(self):
        result = serve_requests(
            _requests(6), shards=2, batch_window=3, seed=0, certify=True
        )
        assert result.completed == 6
        for record in result.records:
            assert record.outcome.certificate is not None
            assert record.outcome.certificate.passed
        assert result.counters.get("certificates_checked") == 6
        assert result.counters.get("certificates_failed", 0) == 0

    def test_certified_single_shard_is_bitwise_identical_to_uncertified(self):
        plain = serve_requests(_requests(5), shards=1, batch_window=2, seed=0)
        certified = serve_requests(
            _requests(5), shards=1, batch_window=2, seed=0, certify=True
        )
        for a, b in zip(plain.records, certified.records):
            assert a.request_id == b.request_id
            assert a.outcome.solution.tobytes() == b.outcome.solution.tobytes()


class TestServiceCanary:
    def test_canary_benches_the_drifted_board(self):
        fleet = FleetConfig(
            boards=2, board_models={1: HOT}, recalibration_pressure=1.0
        )
        result = serve_requests(
            _requests(8),
            shards=1,
            batch_window=2,
            seed=0,
            retry=FAST_RETRY,
            ladder_kwargs={"settle_max_steps": 2000},
            fleet=fleet,
            certify=True,
            canary_interval=1,
        )
        assert result.completed == 8
        counters = result.counters
        assert counters.get("canary_sweeps", 0) >= 1
        assert counters.get("canary_probes", 0) >= 2
        assert counters.get("canary_failures", 0) >= 1
        assert counters.get("canary_quarantines", 0) >= 1
        assert counters.get("boards_condemned", 0) >= 1

    def test_clean_fleet_canaries_pass_quietly(self):
        result = serve_requests(
            _requests(4),
            shards=1,
            batch_window=2,
            seed=0,
            ladder_kwargs={"settle_max_steps": 2000},
            fleet=FleetConfig(boards=2),
            certify=True,
            canary_interval=1,
        )
        assert result.completed == 4
        assert result.counters.get("canary_sweeps", 0) >= 1
        assert result.counters.get("canary_failures", 0) == 0
        assert result.counters.get("canary_quarantines", 0) == 0

    def test_canary_interval_validation(self):
        with pytest.raises(ValueError, match="canary_interval"):
            SolveService(fleet=FleetConfig(boards=2), canary_interval=0)
        with pytest.raises(ValueError, match="requires a fleet"):
            SolveService(canary_interval=2)
