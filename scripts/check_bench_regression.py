#!/usr/bin/env python
"""CI perf regression gate over two ``BENCH_<n>.json`` reports.

    python scripts/check_bench_regression.py BASELINE.json CANDIDATE.json
    python scripts/check_bench_regression.py BENCH_5.json BENCH_6.json --work-only

Thin wrapper over :func:`repro.bench.compare_reports` so CI can gate a
fresh run against the committed trajectory snapshot without invoking
the full CLI. ``--work-only`` restricts the gate to the deterministic
work metrics (Newton iterations, linear solves, modeled speedup) —
wall-clock comparisons against a snapshot committed from different
hardware are noise, but the work metrics are bitwise reproducible at
fixed seed and scale.

``--inject-slowdown BENCH:METRIC:FACTOR`` multiplies one candidate
metric before comparing — the self-test seam CI uses to prove the gate
actually fails on a seeded regression (a gate that cannot fail is not
a gate).

Exit codes: 0 ok, 1 regression (or invalid report), 2 reports not
comparable (scale/seed mismatch), 3 a report path does not exist.
The missing-file case is distinct from a regression so CI can tell a
never-committed / mistyped snapshot path apart from a real slowdown.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import (  # noqa: E402  (path bootstrap above)
    BenchReport,
    ScaleMismatch,
    compare_reports,
)
from repro.bench.compare import (  # noqa: E402
    DEFAULT_TIME_TOLERANCE,
    DEFAULT_WORK_TOLERANCE,
)


def _inject_slowdown(report: BenchReport, spec: str) -> None:
    """Multiply one metric in place: ``benchmark:metric:factor``."""
    try:
        bench_name, metric, factor_text = spec.split(":")
        factor = float(factor_text)
    except ValueError:
        raise SystemExit(f"bad --inject-slowdown spec {spec!r}; want BENCH:METRIC:FACTOR")
    bench = report.benchmarks.get(bench_name)
    if bench is None:
        raise SystemExit(f"--inject-slowdown: no benchmark {bench_name!r} in candidate")
    if metric == "wall_seconds":
        bench.wall_seconds *= factor
        return
    group, _, key = metric.partition(".")
    table = {
        "span_seconds": bench.span_seconds,
        "span_counts": bench.span_counts,
        "counters": bench.counters,
        "work": bench.work,
    }.get(group)
    if table is None or key not in table:
        raise SystemExit(f"--inject-slowdown: no metric {metric!r} on {bench_name!r}")
    table[key] = type(table[key])(table[key] * factor)


EXIT_CODE_EPILOG = """\
exit codes:
  0  gate passed: no hot-path regression past tolerance
  1  regression past tolerance (or an invalid/corrupt report file)
  2  reports not comparable: baseline and candidate were run at a
     different scale or seed (rerun `repro bench` to match the baseline)
  3  missing baseline (or candidate) report file: the committed
     BENCH_<n>.json snapshot was never created or the path is mistyped
"""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="previous BENCH_<n>.json")
    parser.add_argument("candidate", help="fresh BENCH_<n>.json to gate")
    parser.add_argument("--time-tolerance", type=float, default=DEFAULT_TIME_TOLERANCE)
    parser.add_argument("--work-tolerance", type=float, default=DEFAULT_WORK_TOLERANCE)
    parser.add_argument(
        "--work-only",
        action="store_true",
        help="gate only deterministic work metrics (cross-machine CI mode)",
    )
    parser.add_argument(
        "--inject-slowdown",
        metavar="BENCH:METRIC:FACTOR",
        default=None,
        help="self-test seam: scale one candidate metric before comparing",
    )
    args = parser.parse_args(argv)

    try:
        baseline = BenchReport.load(args.baseline)
        candidate = BenchReport.load(args.candidate)
    except FileNotFoundError as exc:
        print(
            f"bench report missing: {exc.filename!r} does not exist; pass the "
            "committed BENCH_<n>.json path",
            file=sys.stderr,
        )
        return 3
    except ValueError as exc:
        print(f"invalid bench report: {exc}", file=sys.stderr)
        return 1
    if args.inject_slowdown:
        _inject_slowdown(candidate, args.inject_slowdown)
        print(f"[self-test] injected slowdown: {args.inject_slowdown}")
    try:
        comparison = compare_reports(
            baseline,
            candidate,
            time_tolerance=args.time_tolerance,
            work_tolerance=args.work_tolerance,
            work_only=args.work_only,
            baseline_label=args.baseline,
            candidate_label=args.candidate,
        )
    except ScaleMismatch as exc:
        print(f"bench compare refused: {exc}", file=sys.stderr)
        return 2
    print(comparison.render())
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    sys.exit(main())
