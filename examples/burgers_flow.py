"""Time-evolving 2-D viscous Burgers' flow with hybrid per-step solves.

This is the paper's envisioned deployment: a standard implicit PDE
solver (Crank-Nicolson time stepping on the 2-D viscous Burgers'
equation) whose per-step nonlinear systems are solved by the hybrid
analog-digital pipeline instead of plain damped Newton.

The script evolves a decaying vortex-like initial condition, prints the
kinetic-energy decay, and compares the per-step digital Newton work
with and without analog seeding.

Run:  python examples/burgers_flow.py
"""

import numpy as np

from repro.analog import AnalogAccelerator
from repro.core import HybridSolver
from repro.nonlinear import NewtonOptions, damped_newton_with_restarts
from repro.pde import BurgersTimeStepper, DirichletBoundary, Grid2D

GRID_N = 6
REYNOLDS = 2.0
DT = 0.1
STEPS = 6


def initial_fields(grid: Grid2D):
    """A smooth swirling initial condition within the dynamic range."""
    xs, ys = grid.interior_meshgrid()
    lx = grid.dx * (grid.nx + 1)
    ly = grid.dy * (grid.ny + 1)
    u = 0.8 * np.sin(np.pi * xs / lx) * np.cos(np.pi * ys / ly)
    v = -0.8 * np.cos(np.pi * xs / lx) * np.sin(np.pi * ys / ly)
    return u, v


def kinetic_energy(u: np.ndarray, v: np.ndarray) -> float:
    return float(0.5 * np.mean(u**2 + v**2))


def main() -> None:
    grid = Grid2D.square(GRID_N)
    boundary = DirichletBoundary.constant(grid, 0.0)
    u, v = initial_fields(grid)

    hybrid = HybridSolver(AnalogAccelerator(seed=7))
    seeded_iterations = []
    baseline_iterations = []

    def hybrid_step_solver(system, guess):
        # A control loop that re-targets has no warm history: compare a
        # *cold-start* baseline (naive zero guess) against the analog
        # seed on every step. (With a warm previous-step guess both are
        # equally easy -- the hybrid pays off exactly when good guesses
        # are unavailable, the paper's Section 1 premise.)
        cold = np.zeros(system.dimension)
        baseline = damped_newton_with_restarts(
            system, cold, NewtonOptions(tolerance=1e-10, max_iterations=100)
        )
        baseline_iterations.append(baseline.total_iterations_including_restarts)
        result = hybrid.solve(system, initial_guess=cold)
        seeded_iterations.append(result.digital_iterations)
        return result.digital

    stepper = BurgersTimeStepper(
        grid,
        reynolds=REYNOLDS,
        dt=DT,
        boundary_u=boundary,
        boundary_v=boundary,
        solver=hybrid_step_solver,
    )

    print(f"2-D viscous Burgers, {GRID_N}x{GRID_N} grid, Re = {REYNOLDS}, dt = {DT}")
    print(f"{'step':>4} | {'time':>5} | {'kinetic energy':>14} | {'max |u|':>8}")
    print("-" * 45)
    print(f"{0:>4} | {0.0:>5.2f} | {kinetic_energy(u, v):>14.6f} | {np.abs(u).max():>8.4f}")
    for step in range(1, STEPS + 1):
        u, v, result = stepper.step(u, v)
        if not result.converged:
            print(f"step {step}: solver failed ({result.failure_reason}); stopping")
            break
        print(
            f"{step:>4} | {step * DT:>5.2f} | {kinetic_energy(u, v):>14.6f} "
            f"| {np.abs(u).max():>8.4f}"
        )

    print("\nPer-step digital Newton iterations (cold start each step):")
    print(f"  baseline damped Newton : {baseline_iterations}")
    print(f"  analog-seeded Newton   : {seeded_iterations}")
    total_baseline = sum(baseline_iterations)
    total_seeded = sum(seeded_iterations)
    print(
        f"\nViscosity dissipates the swirl (energy decays monotonically)."
        f"\nTotal digital iterations: baseline {total_baseline}, seeded {total_seeded}."
        "\nOn smooth well-conditioned steps like these both solvers are cheap;"
        "\nthe seeding payoff grows with problem hardness (high Reynolds number,"
        "\nrandom forcing, no warm history) - see benchmarks/test_figure8_seeding.py."
    )


if __name__ == "__main__":
    main()
