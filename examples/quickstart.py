"""Quickstart: hybrid analog-digital nonlinear solving in five minutes.

Walks the paper's core ideas end to end on small systems:

1. solve the scalar cubic ``u^3 - 1 = 0`` with the *continuous Newton
   method* (the analog accelerator's native algorithm),
2. solve the coupled quadratic system of the paper's Equation 2 on the
   simulated analog accelerator (approximate, fast), and
3. polish the analog seed with digital Newton to double precision —
   the hybrid pipeline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analog import AnalogAccelerator
from repro.core import HybridSolver
from repro.nonlinear import (
    CoupledQuadraticSystem,
    CubicRootSystem,
    continuous_newton_solve,
)


def solve_cubic_continuously() -> None:
    print("=" * 70)
    print("1. Continuous Newton on f(u) = u^3 - 1 (complex plane)")
    print("=" * 70)
    system = CubicRootSystem()
    for start in ([1.5, 0.3], [-1.0, 0.8], [-1.0, -0.8]):
        result = continuous_newton_solve(system, np.array(start))
        root = result.u
        print(
            f"  start ({start[0]:+.2f}, {start[1]:+.2f})  ->  "
            f"root ({root[0]:+.5f}, {root[1]:+.5f})  "
            f"settled in {result.settle_time:.2f} time units"
        )
    print("  (all three cube roots of unity are reachable; which one you")
    print("   get depends only smoothly on the start - Figure 2's claim)\n")


def solve_equation2_on_analog() -> AnalogAccelerator:
    print("=" * 70)
    print("2. Approximate analog solve of the paper's Equation 2")
    print("=" * 70)
    from repro.analog import render_scope

    system = CoupledQuadraticSystem(rhs0=1.0, rhs1=1.0)
    accelerator = AnalogAccelerator(seed=42)
    result = accelerator.solve(
        system,
        initial_guess=np.array([1.0, 1.0]),
        value_bound=3.0,
        record_trajectory=True,
    )
    print(f"  analog solution: ({result.solution[0]:+.4f}, {result.solution[1]:+.4f})")
    print(f"  residual norm:   {result.residual_norm:.3e}  (percent-level: analog accuracy)")
    print(f"  settle time:     {result.settle_time_units:.2f} analog time units")
    print("  settling transient (integrator outputs, scaled units):")
    print(render_scope(result.trajectory, labels=["rho0", "rho1"], channels=[0, 1], width=48))
    print()
    return accelerator


def hybrid_polish(accelerator: AnalogAccelerator) -> None:
    print("=" * 70)
    print("3. Hybrid: analog seed + digital Newton polish")
    print("=" * 70)
    system = CoupledQuadraticSystem(rhs0=1.0, rhs1=1.0)
    solver = HybridSolver(accelerator)
    hybrid = solver.solve(system, initial_guess=np.array([1.0, 1.0]))
    baseline = solver.solve_baseline(system, initial_guess=np.array([1.0, 1.0]))
    print(f"  hybrid solution:  ({hybrid.u[0]:+.12f}, {hybrid.u[1]:+.12f})")
    print(f"  hybrid residual:  {hybrid.residual_norm:.3e} (double-precision grade)")
    print(f"  digital polish iterations after analog seed: {hybrid.digital_iterations}")
    print(
        f"  baseline damped Newton iterations (no seed):  "
        f"{baseline.total_iterations_including_restarts}"
    )


if __name__ == "__main__":
    solve_cubic_continuously()
    accelerator = solve_equation2_on_analog()
    hybrid_polish(accelerator)
