"""Tests for homotopy continuation."""

import numpy as np
import pytest

from repro.nonlinear.homotopy import (
    BlendedSystem,
    HomotopySchedule,
    homotopy_all_roots,
    homotopy_solve,
)
from repro.nonlinear.systems import (
    CallableSystem,
    CoupledQuadraticSystem,
    SimpleSquareSystem,
)


class TestBlendedSystem:
    def test_lambda_zero_is_simple(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        blended = BlendedSystem(simple, hard, 0.0)
        u = np.array([0.3, -0.8])
        np.testing.assert_allclose(blended.residual(u), simple.residual(u))

    def test_lambda_one_is_hard(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        blended = BlendedSystem(simple, hard, 1.0)
        u = np.array([0.3, -0.8])
        np.testing.assert_allclose(blended.residual(u), hard.residual(u))

    def test_jacobian_blends(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        u = np.array([0.5, 0.5])
        mid = BlendedSystem(simple, hard, 0.5)
        expected = 0.5 * simple.jacobian(u) + 0.5 * hard.jacobian(u)
        np.testing.assert_allclose(mid.jacobian(u), expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlendedSystem(SimpleSquareSystem(2), SimpleSquareSystem(3), 0.5)
        with pytest.raises(ValueError):
            BlendedSystem(SimpleSquareSystem(2), SimpleSquareSystem(2), 1.5)


class TestHomotopySolve:
    def test_tracks_to_hard_root(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        result = homotopy_solve(simple, hard, np.array([1.0, 1.0]))
        assert result.converged
        assert hard.residual_norm(result.u) < 1e-10

    def test_path_recorded_monotone_lambda(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        result = homotopy_solve(simple, hard, np.array([1.0, 1.0]))
        lams = np.array(result.lambdas)
        assert lams[0] == 0.0
        assert lams[-1] == 1.0
        assert np.all(np.diff(lams) > 0)
        assert len(result.path) == len(result.lambdas)

    def test_all_four_starts_land_on_true_roots(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        for start in simple.roots():
            result = homotopy_solve(simple, hard, start)
            if result.converged:
                assert hard.residual_norm(result.u) < 1e-8

    def test_failure_reports_lambda(self):
        # Hard system with NO real roots: paths must fail en route.
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(rhs0=-100.0, rhs1=0.0)
        schedule = HomotopySchedule(steps=20)
        result = homotopy_solve(simple, hard, np.array([1.0, 1.0]), schedule)
        assert not result.converged
        assert result.failure_lambda is not None
        assert 0.0 < result.failure_lambda <= 1.0

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            HomotopySchedule(steps=0)


class TestHomotopyAllRoots:
    def test_finds_multiple_roots_and_dedups(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        roots = homotopy_all_roots(simple, hard, simple.roots())
        true_roots = hard.real_roots()
        # Every found root is a true root.
        for root in roots:
            assert hard.residual_norm(root) < 1e-8
        # No duplicates.
        for i in range(roots.shape[0]):
            for j in range(i + 1, roots.shape[0]):
                assert np.linalg.norm(roots[i] - roots[j]) > 1e-6
        # Figure 3: the four starts find the system's real roots.
        assert roots.shape[0] >= min(2, true_roots.shape[0])

    def test_empty_when_no_paths_converge(self):
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(rhs0=-100.0, rhs1=0.0)
        roots = homotopy_all_roots(
            simple, hard, simple.roots(), HomotopySchedule(steps=15)
        )
        assert roots.shape == (0, 2)

    def test_scalar_homotopy_to_shifted_root(self):
        # 1-D: track x^2 - 1 = 0 into (x - 3)(x + 1) = x^2 - 2x - 3 = 0.
        simple = SimpleSquareSystem(1)
        hard = CallableSystem(
            1,
            residual=lambda u: np.array([u[0] ** 2 - 2.0 * u[0] - 3.0]),
            jacobian=lambda u: np.array([[2.0 * u[0] - 2.0]]),
        )
        roots = homotopy_all_roots(simple, hard, np.array([[1.0], [-1.0]]))
        found = sorted(float(r[0]) for r in roots)
        assert found == pytest.approx([-1.0, 3.0], abs=1e-8)
