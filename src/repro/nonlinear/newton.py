"""Digital Newton's method: classical, damped, and the paper's baseline.

Section 2.1 of the paper reviews the two digital variants:

* **classical Newton**: ``u <- u - J(u)^{-1} F(u)`` — quadratically
  convergent near a root, fractally sensitive to the initial guess;
* **damped Newton**: the full step is scaled by ``h in (0, 1]``, which
  grows the convergence basins at the cost of more iterations, and is
  the Euler discretization of the continuous Newton ODE.

The paper's *baseline digital solver* (Section 6.1) starts at damping
1.0 and halves the damping on failure until convergence is possible,
counting only the final (successful) run's work. That restart schedule
is :func:`damped_newton_with_restarts`, which reports both the
charitable "paper accounting" and the true total work.

Each Newton step solves ``J delta = F``. The linear kernel is
pluggable: dense LU for small systems, and the library's sparse Krylov
solvers (Bi-CGstab with ILU(0), or GMRES near singularity) for PDE
stencils; see :func:`make_sparse_linear_solver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.linalg.dense import SingularMatrixError, solve_dense
from repro.linalg.iterative import bicgstab, gmres
from repro.linalg.preconditioners import Ilu0Preconditioner
from repro.linalg.sparse import CsrMatrix
from repro.nonlinear.systems import NonlinearSystem

__all__ = [
    "NewtonOptions",
    "NewtonResult",
    "LinearSolverStats",
    "newton_solve",
    "damped_newton_with_restarts",
    "make_sparse_linear_solver",
]

JacobianLike = Union[np.ndarray, CsrMatrix]
LinearSolver = Callable[[JacobianLike, np.ndarray], np.ndarray]


class NewtonDivergence(RuntimeError):
    """Raised internally when an iteration produces a non-finite state."""


@dataclass
class LinearSolverStats:
    """Aggregate cost of the inner linear solves across Newton steps."""

    solves: int = 0
    inner_iterations: int = 0
    matvecs: int = 0

    def record(self, iterations: int, matvecs: int) -> None:
        self.solves += 1
        self.inner_iterations += iterations
        self.matvecs += matvecs


@dataclass
class NewtonOptions:
    """Knobs of the digital Newton iteration.

    Attributes
    ----------
    damping:
        Step-size fraction ``h``; 1.0 is classical Newton.
    tolerance:
        Convergence threshold on the residual 2-norm. The paper's
        high-precision runs use double-epsilon-scaled tolerances.
    max_iterations:
        Iteration cap; hitting it reports non-convergence.
    divergence_threshold:
        Residual growth beyond this multiple of the initial residual is
        declared divergence (saves pointless iterations).
    """

    damping: float = 1.0
    tolerance: float = 1e-12
    max_iterations: int = 200
    divergence_threshold: float = 1e6

    def __post_init__(self) -> None:
        if not 0.0 < self.damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {self.damping}")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")


@dataclass
class NewtonResult:
    """Outcome of a (possibly restarted) Newton solve."""

    u: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    damping_used: float = 1.0
    restarts: int = 0
    total_iterations_including_restarts: int = 0
    linear_stats: LinearSolverStats = field(default_factory=LinearSolverStats)
    failure_reason: Optional[str] = None


def default_linear_solver(jacobian: JacobianLike, rhs: np.ndarray) -> np.ndarray:
    """Dense LU for arrays; ILU-preconditioned Bi-CGstab for CSR, with
    a GMRES fallback when Bi-CGstab breaks down (near-singular J)."""
    if isinstance(jacobian, CsrMatrix):
        solver = make_sparse_linear_solver()
        return solver(jacobian, rhs)
    return solve_dense(np.asarray(jacobian, dtype=float), rhs)


def make_sparse_linear_solver(
    tol: float = 1e-10,
    max_iterations: int = 2_000,
    stats: Optional[LinearSolverStats] = None,
    preconditioner_kind: str = "jacobi",
) -> LinearSolver:
    """Build the library's production sparse kernel for Newton steps.

    Runs preconditioned Bi-CGstab (the Table 1 kernel of the
    bwaves-style solvers); if it stalls, falls back to restarted GMRES,
    and finally to a dense solve for small systems. Records
    inner-iteration counts in ``stats`` when provided — the CPU/GPU
    models charge per inner iteration.

    ``preconditioner_kind`` selects ``"jacobi"`` (default — fully
    vectorized, right for the diagonally dominant Burgers Jacobians),
    ``"ilu0"`` (stronger but row-serial), or ``"none"``.
    """
    if preconditioner_kind not in ("jacobi", "ilu0", "none"):
        raise ValueError(f"unknown preconditioner_kind {preconditioner_kind!r}")

    def _build_preconditioner(jacobian: CsrMatrix):
        try:
            if preconditioner_kind == "jacobi":
                from repro.linalg.preconditioners import JacobiPreconditioner

                return JacobiPreconditioner(jacobian)
            if preconditioner_kind == "ilu0":
                return Ilu0Preconditioner(jacobian)
        except ValueError:
            return None
        return None

    def solver(jacobian: JacobianLike, rhs: np.ndarray) -> np.ndarray:
        if not isinstance(jacobian, CsrMatrix):
            return solve_dense(np.asarray(jacobian, dtype=float), rhs)
        preconditioner = _build_preconditioner(jacobian)
        result = bicgstab(
            jacobian, rhs, preconditioner=preconditioner, tol=tol, max_iterations=max_iterations
        )
        if not result.converged and jacobian.num_rows > 4096:
            # GMRES fallback for systems too large for the direct
            # emergency path; bounded budget — its restart cycles carry
            # per-stage costs that would dominate wall-clock on
            # near-singular systems.
            result = gmres(
                jacobian,
                rhs,
                preconditioner=preconditioner,
                tol=tol,
                max_iterations=min(max_iterations, 400),
            )
        if not result.converged and jacobian.num_rows <= 4096:
            # Direct emergency fallback for (near-)singular Jacobians.
            # Our own LU is used where its pure-Python cost is tolerable;
            # past that we lean on LAPACK so a pathological instance
            # cannot stall a whole experiment sweep.
            dense = jacobian.to_dense()
            if jacobian.num_rows <= 128:
                try:
                    delta = solve_dense(dense, rhs)
                except SingularMatrixError:
                    delta = np.linalg.lstsq(dense, rhs, rcond=None)[0]
            else:
                try:
                    delta = np.linalg.solve(dense, rhs)
                except np.linalg.LinAlgError:
                    delta = np.linalg.lstsq(dense, rhs, rcond=None)[0]
            if stats is not None:
                stats.record(result.iterations, result.matvec_count)
            return delta
        if stats is not None:
            stats.record(result.iterations, result.matvec_count)
        return result.x

    return solver


def newton_solve(
    system: NonlinearSystem,
    u0: np.ndarray,
    options: Optional[NewtonOptions] = None,
    linear_solver: Optional[LinearSolver] = None,
) -> NewtonResult:
    """Run (damped) Newton's method from ``u0``.

    The iteration is ``u <- u - h * J(u)^{-1} F(u)`` with ``h`` fixed at
    ``options.damping``. Convergence is declared when the residual
    2-norm drops below ``options.tolerance``; divergence when the state
    stops being finite, the Jacobian is singular to working precision,
    or the residual grows past ``options.divergence_threshold`` times
    its initial value.
    """
    options = options or NewtonOptions()
    solve = linear_solver or default_linear_solver
    u = np.array(u0, dtype=float, copy=True)
    stats = LinearSolverStats()

    residual = system.residual(u)
    norm = float(np.linalg.norm(residual))
    history = [norm]
    initial_norm = max(norm, 1e-300)

    if norm <= options.tolerance:
        return NewtonResult(
            u=u,
            converged=True,
            iterations=0,
            residual_norm=norm,
            residual_history=history,
            damping_used=options.damping,
            linear_stats=stats,
        )

    for iteration in range(1, options.max_iterations + 1):
        jacobian = system.jacobian(u)
        try:
            delta = solve(jacobian, residual)
        except SingularMatrixError:
            return NewtonResult(
                u=u,
                converged=False,
                iterations=iteration - 1,
                residual_norm=norm,
                residual_history=history,
                damping_used=options.damping,
                linear_stats=stats,
                failure_reason="singular Jacobian",
            )
        stats.solves += 1
        u = u - options.damping * delta
        if not np.all(np.isfinite(u)):
            return NewtonResult(
                u=u,
                converged=False,
                iterations=iteration,
                residual_norm=float("inf"),
                residual_history=history,
                damping_used=options.damping,
                linear_stats=stats,
                failure_reason="non-finite iterate",
            )
        residual = system.residual(u)
        norm = float(np.linalg.norm(residual))
        history.append(norm)
        if norm <= options.tolerance:
            return NewtonResult(
                u=u,
                converged=True,
                iterations=iteration,
                residual_norm=norm,
                residual_history=history,
                damping_used=options.damping,
                linear_stats=stats,
            )
        if norm > options.divergence_threshold * initial_norm:
            return NewtonResult(
                u=u,
                converged=False,
                iterations=iteration,
                residual_norm=norm,
                residual_history=history,
                damping_used=options.damping,
                linear_stats=stats,
                failure_reason="residual diverged",
            )
    return NewtonResult(
        u=u,
        converged=False,
        iterations=options.max_iterations,
        residual_norm=norm,
        residual_history=history,
        damping_used=options.damping,
        linear_stats=stats,
        failure_reason="iteration cap reached",
    )


def damped_newton_with_restarts(
    system: NonlinearSystem,
    u0: np.ndarray,
    options: Optional[NewtonOptions] = None,
    linear_solver: Optional[LinearSolver] = None,
    min_damping: float = 1.0 / 1024.0,
) -> NewtonResult:
    """The paper's baseline solver: halve the damping until convergence.

    Starts at ``options.damping`` (default 1.0). On failure, halves the
    damping and restarts from ``u0``, down to ``min_damping``. Matching
    the paper's charitable accounting ("we give the digital solver the
    advantage counting only the time spent using the correct damping
    parameter"), the returned ``iterations`` counts only the successful
    run; the honest total including failed restarts is in
    ``total_iterations_including_restarts``.
    """
    options = options or NewtonOptions()
    damping = options.damping
    restarts = 0
    total_iterations = 0
    last: Optional[NewtonResult] = None
    while damping >= min_damping:
        attempt_options = NewtonOptions(
            damping=damping,
            tolerance=options.tolerance,
            max_iterations=options.max_iterations,
            divergence_threshold=options.divergence_threshold,
        )
        result = newton_solve(system, u0, attempt_options, linear_solver)
        total_iterations += result.iterations
        if result.converged:
            result.restarts = restarts
            result.total_iterations_including_restarts = total_iterations
            return result
        last = result
        restarts += 1
        damping /= 2.0
    assert last is not None
    last.restarts = restarts
    last.total_iterations_including_restarts = total_iterations
    last.failure_reason = f"no damping in [{min_damping}, {options.damping}] converged"
    return last
