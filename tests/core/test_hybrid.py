"""Tests for the hybrid analog-seeded digital solver."""

import numpy as np
import pytest

from repro.analog.engine import AnalogAccelerator
from repro.analog.noise import NoiseModel
from repro.core.hybrid import DOUBLE_EPS, HybridResult, HybridSolver
from repro.nonlinear.newton import NewtonOptions
from repro.nonlinear.systems import CoupledQuadraticSystem
from repro.pde.burgers import random_burgers_system


class TestHybridSolver:
    def test_reaches_high_precision(self):
        solver = HybridSolver(AnalogAccelerator(seed=0))
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(0))
        result = solver.solve(system, initial_guess=guess)
        assert result.converged
        assert result.residual_norm < 1e-10

    def test_seed_puts_newton_in_quadratic_region(self):
        # The hybrid digital polish takes very few iterations.
        solver = HybridSolver(AnalogAccelerator(seed=1))
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(1))
        result = solver.solve(system, initial_guess=guess)
        assert result.converged
        assert result.digital_iterations <= 8
        assert result.digital.restarts == 0

    def test_hybrid_beats_or_matches_baseline_iterations(self):
        solver = HybridSolver(AnalogAccelerator(seed=2))
        wins = 0
        trials = 0
        for seed in range(4):
            system, guess = random_burgers_system(2, 2.0, np.random.default_rng(seed + 10))
            baseline = solver.solve_baseline(system, initial_guess=guess)
            if not baseline.converged:
                continue
            hybrid = solver.solve(system, initial_guess=guess)
            assert hybrid.converged
            trials += 1
            if hybrid.digital_iterations <= baseline.total_iterations_including_restarts:
                wins += 1
        assert trials > 0
        assert wins == trials

    def test_analog_result_attached(self):
        solver = HybridSolver(AnalogAccelerator(seed=3))
        system = CoupledQuadraticSystem(1.0, 1.0)
        result = solver.solve(system, initial_guess=np.array([1.0, 1.0]))
        assert isinstance(result, HybridResult)
        assert result.analog.settle_time_units > 0.0
        # Seed is percent-accurate; polish is eps-accurate.
        assert system.residual_norm(result.analog.solution) > result.residual_norm

    def test_fallback_when_analog_fails(self):
        # A time limit too short for settling: hybrid must still solve
        # via the damped fallback.
        acc = AnalogAccelerator(seed=4)
        solver = HybridSolver(acc)
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(6))
        result = solver.solve(system, initial_guess=guess, analog_time_limit=1e-3)
        assert result.converged

    def test_custom_polish_options(self):
        solver = HybridSolver(
            AnalogAccelerator(seed=5),
            polish_options=NewtonOptions(tolerance=1e-6, max_iterations=50),
        )
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(7))
        result = solver.solve(system, initial_guess=guess)
        assert result.converged
        assert result.residual_norm < 1e-6

    def test_double_eps_constant(self):
        assert DOUBLE_EPS == pytest.approx(2.220446049250313e-16)


class TestFallbackOptions:
    def test_default_fallback_relaxes_tight_polish_tolerance(self):
        # The polish runs at ~1e3 * eps; inheriting that for the damped
        # recovery used to loop every damping level to the iteration
        # cap. The default fallback gets its own relaxed floor.
        solver = HybridSolver(AnalogAccelerator(seed=0))
        assert solver.polish_options.tolerance < HybridSolver.FALLBACK_TOLERANCE_FLOOR
        assert solver.fallback_options.tolerance == HybridSolver.FALLBACK_TOLERANCE_FLOOR
        assert solver.fallback_options.max_iterations >= 200

    def test_explicit_fallback_options_respected(self):
        custom = NewtonOptions(tolerance=1e-7, max_iterations=33)
        solver = HybridSolver(AnalogAccelerator(seed=0), fallback_options=custom)
        assert solver.fallback_options is custom

    def test_loose_polish_tolerance_not_tightened(self):
        solver = HybridSolver(
            AnalogAccelerator(seed=0),
            polish_options=NewtonOptions(tolerance=1e-6, max_iterations=50),
        )
        assert solver.fallback_options.tolerance == 1e-6

    def test_recovery_converges_and_reports_honestly(self):
        # Unsettled analog run (tiny time limit) on a hard problem:
        # the undamped polish from the naive guess fails, recovery runs
        # under the relaxed options, and the final result's converged
        # flag matches the residual actually achieved.
        solver = HybridSolver(AnalogAccelerator(seed=4))
        system, guess = random_burgers_system(4, 2.0, np.random.default_rng(11))
        result = solver.solve(system, initial_guess=guess, analog_time_limit=1e-3)
        if result.converged:
            achieved = max(
                solver.polish_options.tolerance, solver.fallback_options.tolerance
            )
            assert result.residual_norm <= achieved
        else:
            assert result.residual_norm > solver.fallback_options.tolerance

    def test_recovery_folds_restart_accounting(self):
        # When recovery kicks in, its restart/iteration bill must not
        # vanish from the result the cost models read.
        solver = HybridSolver(
            AnalogAccelerator(seed=4),
            polish_options=NewtonOptions(
                damping=1.0, tolerance=1e3 * DOUBLE_EPS, max_iterations=2
            ),
        )
        system, guess = random_burgers_system(4, 2.0, np.random.default_rng(12))
        result = solver.solve(system, initial_guess=guess, analog_time_limit=1e-3)
        digital = result.digital
        assert (
            digital.total_iterations_including_restarts >= digital.iterations
        )
        if result.converged and digital.total_linear_stats is not None:
            assert digital.total_linear_stats.solves >= digital.linear_stats.solves
