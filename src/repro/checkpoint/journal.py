"""Write-ahead journal for batch solve runs.

The :class:`~repro.runtime.runtime.Runtime` is a retry loop around
expensive solves; a crash mid-batch used to lose every completed
outcome. The journal fixes that with the classic write-ahead
discipline: *append a record before acting, commit results as soon as
they are terminal*. One JSONL file per batch, every record flushed and
fsynced, every record carrying its own content hash.

Record kinds, in the order a healthy run emits them:

``batch_started``
    The full runtime configuration (seed, workers, retry policy, fault
    plan, degradation model) plus the batch id — everything needed to
    rebuild an *identical* runtime for resume.
``request_accepted``
    One per admitted request, in submission order, with the complete
    :class:`~repro.runtime.api.SolveRequest` serialization.
``attempt_started``
    Appended before each attempt executes (the write-ahead part): a
    crash after this record but before a commit marks the request
    in-flight, and resume re-runs it from attempt 0 — safe because
    every random stream an attempt consumes is keyed by
    ``stable_seed(seed, request_id, attempt, ...)``, so the re-run
    reproduces the interrupted attempt sequence bitwise.
``outcome_committed``
    The terminal :class:`~repro.runtime.api.SolveOutcome` (solution
    array included, base64 raw bytes) plus the per-request counter
    deltas it contributed to ``BatchResult.counters`` and to the
    tracer — replay re-applies these so a resumed batch's counters
    equal an uninterrupted run's.
``batch_interrupted`` / ``batch_completed``
    Terminal batch markers (graceful shutdown writes the former).
``batch_resumed``
    Appended by a resuming process before it continues the batch.

Reading tolerates a torn final line — that is simply where the crash
landed — but a hash or parse failure on any *earlier* record is real
corruption and raises :class:`JournalError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.checkpoint.atomic import (
    atomic_write_text,
    decode_array,
    encode_array,
    payload_digest,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalError",
    "BatchJournal",
    "JournalReplay",
    "read_journal",
    "request_to_record",
    "request_from_record",
    "outcome_to_record",
    "outcome_from_record",
    "runtime_config_record",
    "runtime_from_config",
]

JOURNAL_SCHEMA = 1

PathLike = Union[str, Path]


class JournalError(ValueError):
    """A journal failed validation somewhere other than its torn tail."""


def _tuplify(value: Any) -> Any:
    """JSON round-trips tuples as lists; problem params need them back."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


# ---------------------------------------------------------------------------
# Object <-> record serialization
# ---------------------------------------------------------------------------


def request_to_record(request: "SolveRequest") -> Dict[str, Any]:
    return {
        "request_id": request.request_id,
        "problem": {"kind": request.problem.kind, "params": [list(pair) for pair in request.problem.params]},
        "deadline_seconds": request.deadline_seconds,
        "rungs": None if request.rungs is None else list(request.rungs),
        "value_bound": request.value_bound,
        "analog_time_limit": request.analog_time_limit,
    }


def request_from_record(record: Dict[str, Any]) -> "SolveRequest":
    from repro.runtime.api import ProblemSpec, SolveRequest

    problem = ProblemSpec(
        kind=record["problem"]["kind"],
        params=tuple((key, _tuplify(value)) for key, value in record["problem"]["params"]),
    )
    rungs = record.get("rungs")
    return SolveRequest(
        request_id=record["request_id"],
        problem=problem,
        deadline_seconds=record.get("deadline_seconds"),
        rungs=None if rungs is None else tuple(rungs),
        value_bound=record.get("value_bound", 3.0),
        analog_time_limit=record.get("analog_time_limit", 60.0),
    )


def outcome_to_record(outcome: "SolveOutcome") -> Dict[str, Any]:
    return {
        "request_id": outcome.request_id,
        "status": outcome.status,
        "rung": outcome.rung,
        "residual_norm": outcome.residual_norm,
        "attempts": outcome.attempts,
        "retries": outcome.retries,
        "rungs_tried": list(outcome.rungs_tried),
        "faults": list(outcome.faults),
        "error": outcome.error,
        "solution": None if outcome.solution is None else encode_array(outcome.solution),
        "elapsed_seconds": outcome.elapsed_seconds,
        "iterations": outcome.iterations,
        "attempt_history": list(outcome.attempt_history),
        "health": outcome.health,
        "certificate": (
            None if outcome.certificate is None else outcome.certificate.to_record()
        ),
    }


def outcome_from_record(record: Dict[str, Any]) -> "SolveOutcome":
    from repro.runtime.api import SolveOutcome

    solution = record.get("solution")
    certificate = record.get("certificate")
    if certificate is not None:
        from repro.certify.certificate import SolveCertificate

        certificate = SolveCertificate.from_record(certificate)
    return SolveOutcome(
        request_id=record["request_id"],
        status=record["status"],
        rung=record.get("rung"),
        residual_norm=record.get("residual_norm", float("inf")),
        attempts=record.get("attempts", 1),
        retries=record.get("retries", 0),
        rungs_tried=tuple(record.get("rungs_tried") or ()),
        faults=tuple(record.get("faults") or ()),
        error=record.get("error"),
        solution=None if solution is None else decode_array(solution),
        elapsed_seconds=record.get("elapsed_seconds", 0.0),
        iterations=record.get("iterations", 0),
        attempt_history=list(record.get("attempt_history") or []),
        health=record.get("health"),
        certificate=certificate,
    )


def runtime_config_record(runtime: "Runtime") -> Dict[str, Any]:
    """Everything needed to rebuild an identical runtime for resume."""
    faults = None
    if runtime.faults is not None:
        faults = {
            "seed": runtime.faults.seed,
            "rates": [list(pair) for pair in runtime.faults.rates],
            "specs": [
                {
                    "kind": spec.kind,
                    "request_id": spec.request_id,
                    "attempt": spec.attempt,
                    "magnitude": spec.magnitude,
                }
                for spec in runtime.faults.specs
            ],
        }
    degradation = None
    if runtime.degradation is not None:
        model = runtime.degradation
        degradation = {
            "gain_drift_sigma": model.gain_drift_sigma,
            "offset_drift_sigma": model.offset_drift_sigma,
            "gain_drift_bias": model.gain_drift_bias,
            "stuck_tile_rate": model.stuck_tile_rate,
            "dead_dac_rate": model.dead_dac_rate,
            "stuck_tiles": list(model.stuck_tiles),
            "dead_dacs": list(model.dead_dacs),
            "seed": model.seed,
        }
    ladder_kwargs = runtime.ladder_kwargs
    if ladder_kwargs is not None:
        try:  # only JSON-able ladder options survive a journal round trip
            ladder_kwargs = json.loads(json.dumps(ladder_kwargs))
        except (TypeError, ValueError):
            ladder_kwargs = None
    fleet_config = getattr(runtime, "fleet_config", None)
    certify = getattr(runtime, "certify", None)
    return {
        "seed": runtime.seed,
        "workers": runtime.workers,
        "queue_limit": runtime.queue_limit,
        "poll_interval": runtime.poll_interval,
        "retry": {
            "max_attempts": runtime.retry.max_attempts,
            "base_delay": runtime.retry.base_delay,
            "max_delay": runtime.retry.max_delay,
            "jitter": runtime.retry.jitter,
        },
        "faults": faults,
        "degradation": degradation,
        "ladder_kwargs": ladder_kwargs,
        "fleet": fleet_config.to_record() if fleet_config is not None else None,
        "certify": certify.to_record() if certify is not None else None,
    }


def runtime_from_config(config: Dict[str, Any], **overrides: Any) -> "Runtime":
    """Rebuild a :class:`~repro.runtime.runtime.Runtime` from a
    ``batch_started`` config record (``overrides`` win, e.g. a fresh
    journal handle or a shutdown latch)."""
    from repro.analog.health import DegradationModel
    from repro.runtime.api import RetryPolicy
    from repro.runtime.faults import FaultInjector, FaultSpec
    from repro.runtime.runtime import Runtime

    faults = None
    if config.get("faults") is not None:
        raw = config["faults"]
        faults = FaultInjector(
            specs=tuple(
                FaultSpec(
                    kind=spec["kind"],
                    request_id=spec.get("request_id"),
                    attempt=spec.get("attempt"),
                    magnitude=spec.get("magnitude"),
                )
                for spec in raw.get("specs", [])
            ),
            rates=tuple((kind, rate) for kind, rate in raw.get("rates", [])),
            seed=raw.get("seed", 0),
        )
    degradation = None
    if config.get("degradation") is not None:
        raw = dict(config["degradation"])
        raw["stuck_tiles"] = tuple(raw.get("stuck_tiles") or ())
        raw["dead_dacs"] = tuple(raw.get("dead_dacs") or ())
        degradation = DegradationModel(**raw)
    fleet = None
    if config.get("fleet") is not None:
        from repro.fleet.scheduler import FleetConfig

        fleet = FleetConfig.from_record(config["fleet"])
    certify = None
    if config.get("certify") is not None:
        from repro.certify.certificate import CertifyPolicy

        certify = CertifyPolicy.from_record(config["certify"])
    kwargs: Dict[str, Any] = {
        "workers": config.get("workers", 1),
        "queue_limit": config.get("queue_limit", 256),
        "retry": RetryPolicy(**config.get("retry", {})),
        "seed": config.get("seed", 0),
        "faults": faults,
        "ladder_kwargs": config.get("ladder_kwargs"),
        "poll_interval": config.get("poll_interval", 0.02),
        "degradation": degradation,
        "fleet": fleet,
        "certify": certify,
    }
    kwargs.update(overrides)
    return Runtime(**kwargs)


# ---------------------------------------------------------------------------
# Write side
# ---------------------------------------------------------------------------


class BatchJournal:
    """Append-only, fsync-per-record JSONL journal for one batch run.

    Records cannot be renamed into place (the file grows), so
    durability is per line: serialize, write, flush, ``os.fsync``. Each
    record embeds a SHA-256 of its own content; the reader uses it to
    distinguish a torn tail (expected after a crash) from corruption.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._handle = None
        self._seq = 0

    @classmethod
    def resume(cls, replay: "JournalReplay") -> "BatchJournal":
        """A journal handle continuing an existing file's sequence.

        If the file ends in a torn record (the crash point), the valid
        prefix is rewritten atomically first — appending after a torn
        tail would leave invalid JSON *mid*-file, which readers rightly
        treat as corruption rather than a crash mark.
        """
        if replay.truncated:
            atomic_write_text(replay.path, "\n".join(replay.raw_lines) + "\n")
        journal = cls(replay.path)
        journal._seq = replay.next_seq
        return journal

    @property
    def records_written(self) -> int:
        return self._seq

    def open(self) -> "BatchJournal":
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "BatchJournal":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def append(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Durably append one record; returns it (with seq + hash)."""
        self.open()
        record = {"kind": kind, "seq": self._seq, **fields}
        record["sha256"] = payload_digest(record)
        self._handle.write(json.dumps(record, allow_nan=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._seq += 1
        return record

    # -- record kinds ---------------------------------------------------

    def batch_started(self, runtime: "Runtime", batch_id: str, requests: int) -> None:
        self.append(
            "batch_started",
            schema=JOURNAL_SCHEMA,
            batch_id=batch_id,
            requests=requests,
            config=runtime_config_record(runtime),
        )

    def request_accepted(self, request: "SolveRequest") -> None:
        self.append("request_accepted", request=request_to_record(request))

    def attempt_started(self, request_id: str, attempt: int) -> None:
        self.append("attempt_started", request_id=request_id, attempt=attempt)

    def outcome_committed(
        self,
        outcome: "SolveOutcome",
        batch_counters: Dict[str, float],
        trace_counters: Dict[str, float],
        trace_gauges: Dict[str, float],
    ) -> None:
        self.append(
            "outcome_committed",
            request_id=outcome.request_id,
            outcome=outcome_to_record(outcome),
            batch_counters=dict(batch_counters),
            trace_counters=dict(trace_counters),
            trace_gauges=dict(trace_gauges),
        )

    def batch_resumed(self, replayed: int, pending: int) -> None:
        self.append("batch_resumed", replayed=replayed, pending=pending)

    def batch_interrupted(self, reason: str) -> None:
        self.append("batch_interrupted", reason=reason)

    def batch_completed(self, completed: int, failed: int) -> None:
        self.append("batch_completed", completed=completed, failed=failed)


# ---------------------------------------------------------------------------
# Read / replay side
# ---------------------------------------------------------------------------


@dataclass
class JournalReplay:
    """A parsed journal, digested into resume decisions.

    ``outcomes`` maps request id to its ``outcome_committed`` record
    (outcome + counter deltas); ``requests`` preserves acceptance
    order. A request with an accepted record but no committed outcome
    was in flight when the run died — resume re-runs it from attempt 0.
    """

    path: Path
    records: List[Dict[str, Any]] = field(default_factory=list)
    raw_lines: List[str] = field(default_factory=list)
    truncated: bool = False
    config: Optional[Dict[str, Any]] = None
    batch_id: Optional[str] = None
    requests: List["SolveRequest"] = field(default_factory=list)
    outcomes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    attempts_started: Dict[str, int] = field(default_factory=dict)
    interrupted: bool = False
    completed: bool = False
    resumes: int = 0

    @property
    def next_seq(self) -> int:
        return len(self.records)

    def pending_requests(self) -> List["SolveRequest"]:
        """Accepted requests with no committed outcome (re-run these)."""
        return [
            request
            for request in self.requests
            if request.request_id not in self.outcomes
        ]

    def replayed_outcome(self, request_id: str) -> Optional[Tuple["SolveOutcome", Dict[str, float], Dict[str, float], Dict[str, float]]]:
        record = self.outcomes.get(request_id)
        if record is None:
            return None
        return (
            outcome_from_record(record["outcome"]),
            dict(record.get("batch_counters") or {}),
            dict(record.get("trace_counters") or {}),
            dict(record.get("trace_gauges") or {}),
        )

    def build_runtime(self, **overrides: Any) -> "Runtime":
        if self.config is None:
            raise JournalError(f"{self.path}: no batch_started record; cannot rebuild runtime")
        return runtime_from_config(self.config, **overrides)


def read_journal(path: PathLike) -> JournalReplay:
    """Parse a batch journal, tolerating (and flagging) a torn tail.

    The final line is allowed to be torn or hash-corrupt — that is the
    crash point, reported via ``replay.truncated``. Any earlier invalid
    record means the file was damaged after the fact and raises
    :class:`JournalError`; a resume must not silently skip history.
    """
    path = Path(path)
    replay = JournalReplay(path=path)
    lines = [
        (number, line)
        for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1)
        if line.strip()
    ]
    for position, (number, line) in enumerate(lines):
        is_last = position == len(lines) - 1
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise JournalError(f"{path}:{number}: journal record is not an object")
            expected = record.pop("sha256", None)
            if expected != payload_digest(record):
                raise JournalError(f"{path}:{number}: journal record hash mismatch")
        except json.JSONDecodeError as exc:
            if is_last:
                replay.truncated = True
                break
            raise JournalError(f"{path}:{number}: invalid journal record: {exc}") from exc
        except JournalError:
            if is_last:
                replay.truncated = True
                break
            raise
        replay.records.append(record)
        replay.raw_lines.append(line)
        kind = record.get("kind")
        if kind == "batch_started":
            replay.config = record.get("config")
            replay.batch_id = record.get("batch_id")
        elif kind == "request_accepted":
            request = request_from_record(record["request"])
            if all(r.request_id != request.request_id for r in replay.requests):
                replay.requests.append(request)
        elif kind == "attempt_started":
            request_id = record["request_id"]
            replay.attempts_started[request_id] = (
                replay.attempts_started.get(request_id, 0) + 1
            )
        elif kind == "outcome_committed":
            replay.outcomes[record["request_id"]] = record
        elif kind == "batch_resumed":
            replay.resumes += 1
            replay.interrupted = False
        elif kind == "batch_interrupted":
            replay.interrupted = True
        elif kind == "batch_completed":
            replay.completed = True
    return replay
