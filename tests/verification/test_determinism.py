"""Nondeterminism audit: seeded RNGs, reproducible runs, seeds in traces.

The paper's figures are Monte-Carlo over random problem instances; the
repro is only trustworthy if every random stream is seeded and a rerun
with the same seed retells exactly the same story. Three layers:

* a static audit that no ``default_rng()`` call in ``src/`` is
  unseeded;
* two same-seed ``run_figure7`` runs produce identical rows, identical
  iteration counts and identical kernel accounting;
* the ``--trace`` manifest records the seed, so a trace file is enough
  to rerun what produced it;
* a same-seed runtime batch is bitwise identical at any worker count —
  concurrency is an execution detail, never an input to the answer.
"""

import re
from pathlib import Path

import numpy as np

from repro.cli import main
from repro.experiments.figure7 import run_figure7
from repro.runtime import ProblemSpec, RetryPolicy, Runtime, SolveRequest
from repro.trace import Tracer, read_trace

SRC = Path(__file__).resolve().parents[2] / "src"

FIGURE7_KWARGS = dict(
    grid_sizes=(2, 4), reynolds_values=(0.01, 1.0), trials=1, seed=123
)


class TestSeededRngAudit:
    def test_no_unseeded_default_rng_in_src(self):
        """``default_rng()`` with no argument draws OS entropy — any such
        call makes figures unreproducible. Every call site must pass a
        seed (or a seeded generator)."""
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            for number, line in enumerate(path.read_text().splitlines(), start=1):
                if re.search(r"default_rng\(\s*\)", line):
                    offenders.append(f"{path.relative_to(SRC)}:{number}: {line.strip()}")
        assert not offenders, "unseeded default_rng() calls:\n" + "\n".join(offenders)


class TestSameSeedReruns:
    def test_figure7_rows_and_stats_identical(self):
        first = run_figure7(**FIGURE7_KWARGS)
        second = run_figure7(**FIGURE7_KWARGS)
        assert first.rows_data == second.rows_data
        for field in ("solves", "inner_iterations", "matvecs", "preconditioner_builds"):
            assert getattr(first.kernel_stats, field) == getattr(second.kernel_stats, field)

    def test_figure7_traced_iteration_counts_identical(self):
        """Span-level determinism: the same seed replays the same number
        of Newton iterations and linear solves, span for span."""
        traces = []
        for _ in range(2):
            tracer = Tracer()
            run_figure7(**FIGURE7_KWARGS, tracer=tracer)
            traces.append(tracer)
        for name in ("newton_iter", "linear_solve", "newton_attempt", "solve"):
            assert len(traces[0].spans_named(name)) == len(traces[1].spans_named(name)), name
        first_inner = [
            span.attrs.get("inner_iterations") for span in traces[0].spans_named("linear_solve")
        ]
        second_inner = [
            span.attrs.get("inner_iterations") for span in traces[1].spans_named("linear_solve")
        ]
        assert first_inner == second_inner


class TestRuntimeConcurrencyDeterminism:
    """workers=1 and workers=4 must be indistinguishable in every output.

    All derived randomness in :mod:`repro.runtime` — accelerator die
    sampling, retry jitter — is keyed by ``stable_seed(seed,
    request_id, attempt, ...)``, never by pool scheduling order, so a
    same-seed batch must agree bitwise across worker counts.
    """

    @staticmethod
    def _batch(workers):
        requests = [
            SolveRequest(
                f"det-{i}",
                (
                    ProblemSpec.burgers(2, 2.0, seed=40 + i)
                    if i % 2
                    else ProblemSpec.quadratic(rhs0=1.0 + 0.2 * i)
                ),
                analog_time_limit=1e-3,
            )
            for i in range(6)
        ]
        tracer = Tracer()
        runtime = Runtime(
            workers=workers,
            seed=99,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        return runtime.run_batch(requests, tracer=tracer), tracer

    def test_outcomes_bitwise_identical_across_worker_counts(self):
        serial, serial_tracer = self._batch(workers=1)
        pooled, pooled_tracer = self._batch(workers=4)
        assert [o.request_id for o in serial.outcomes] == [
            o.request_id for o in pooled.outcomes
        ]
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert (a.status, a.rung, a.attempts, a.attempt_history) == (
                b.status,
                b.rung,
                b.attempts,
                b.attempt_history,
            )
            assert a.residual_norm == b.residual_norm  # bitwise, not approx
            assert np.array_equal(a.solution, b.solution)

        # Solver-side counters agree exactly; execution-mode keys
        # (pool bookkeeping) are the only permitted difference.
        for key in ("runtime_attempts", "requests_completed", "ladder_fallbacks"):
            assert serial_tracer.counters.get(key, 0) == pooled_tracer.counters.get(
                key, 0
            ), key

        # Same span-name histogram: identical work was traced, even
        # though pooled spans were grafted from worker processes.
        def histogram(tracer):
            names = {}
            for span in tracer.spans:
                names[span.name] = names.get(span.name, 0) + 1
            return names

        assert histogram(serial_tracer) == histogram(pooled_tracer)


class TestSeedInTraceManifest:
    def test_cli_trace_records_seed_and_settings(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "figure7",
                    "--nx",
                    "4",
                    "--reynolds",
                    "1.0",
                    "--trials",
                    "1",
                    "--seed",
                    "42",
                    "--trace",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest = read_trace(path).manifest
        assert manifest["seed"] == 42
        assert manifest["command"] == "figure7"
        assert manifest["grid_sizes"] == [4]
        assert "repro_version" in manifest
