"""Run every table/figure experiment at (near-)paper scale.

Writes the rendered outputs to ``results/full_experiments.txt``; the
paper-vs-measured summary in EXPERIMENTS.md is compiled from this run.
Expect a total runtime of tens of minutes (the 32x32 Figure 9 leg and
the 400-trial Figure 6 sweep dominate).

Usage:  python scripts/run_full_experiments.py [output-path]
"""

import sys
import time
from pathlib import Path

from repro.experiments import (
    run_figure2,
    run_figure3,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

EXPERIMENTS = [
    ("Table 1: workload function profiles", lambda: run_table1(repeats=3)),
    (
        "Table 2: Reynolds number effects",
        lambda: run_table2(reynolds_values=(0.001, 0.01, 0.1, 1.0, 10.0), trials=5),
    ),
    ("Table 3: analog component usage per PDE variable", lambda: run_table3(grid_n=2)),
    ("Table 4: scaled-up accelerator area/power", run_table4),
    ("Table 5: related-work matrix", run_table5),
    (
        "Figure 2: basins for u^3 - 1 (256x256, as in the paper)",
        lambda: run_figure2(resolution=256, noise_level=1e-3),
    ),
    ("Figure 3: Equation 2 with/without homotopy (128x128)", lambda: run_figure3(resolution=128)),
    ("Figure 6: analog error distribution (400 trials)", lambda: run_figure6(trials=400)),
    (
        "Figure 7: time to convergence sweep",
        lambda: run_figure7(
            grid_sizes=(2, 4, 8, 16),
            reynolds_values=(0.001, 0.01, 0.1, 1.0, 2.0),
            trials=2,
        ),
    ),
    (
        "Figure 8: baseline vs seeded across Reynolds (16x16)",
        lambda: run_figure8(
            grid_n=16, reynolds_values=(0.01, 0.25, 0.5, 1.0, 2.0), trials=3
        ),
    ),
    (
        "Figure 9: GPU-scale time and energy (16x16 and 32x32)",
        lambda: run_figure9(grid_sizes=(16, 32), trials=2, seed=1),
    ),
]


def main() -> None:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results/full_experiments.txt")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    sections = []
    for title, runner in EXPERIMENTS:
        print(f"=== {title} ...", flush=True)
        start = time.time()
        try:
            result = runner()
            body = result.render()
        except Exception as error:  # record, keep going
            body = f"FAILED: {error!r}"
        elapsed = time.time() - start
        section = f"{'=' * 72}\n{title}\n(completed in {elapsed:.1f} s)\n{'=' * 72}\n{body}\n"
        sections.append(section)
        out_path.write_text("\n".join(sections))
        print(f"    done in {elapsed:.1f} s", flush=True)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
