"""Zero-dependency structured tracing for the solve pipeline.

The paper's headline claims are iteration-count and time-to-convergence
curves (Figures 7-9); regressions in convergence behaviour are
invisible from aggregate counters alone. :class:`Tracer` records the
per-stage story: nestable spans (``solve`` -> ``newton_attempt`` ->
``newton_iter`` -> ``linear_solve``; ``analog_settle`` -> ``ode_step``)
carrying monotonic timestamps, residual norms, damping levels and the
linear-kernel counters as attributes, plus named counters and gauges.

Everything that emits spans takes an optional ``tracer=`` argument
defaulting to ``None``; :func:`as_tracer` maps ``None`` to the shared
:data:`NULL_TRACER`, whose span handle is a preallocated singleton so
the hot path stays allocation-free and branch-cheap when tracing is
off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "TraceNestingError",
]


class TraceNestingError(RuntimeError):
    """Raised when spans are closed out of order or left dangling."""


@dataclass
class SpanRecord:
    """A completed span: one timed stage of the solve pipeline."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    t_start: float
    t_end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_record(self) -> Dict[str, Any]:
        """JSON-serializable dict (one JSONL line, sans type tag)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": self.attrs,
        }


class Span:
    """An open span handle; close via context-manager exit or ``close``."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "depth", "t_start", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        depth: int,
        t_start: float,
        attrs: Dict[str, Any],
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.t_start = t_start
        self.attrs = attrs

    def set(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one attribute; chainable."""
        self.attrs[key] = value
        return self

    def update(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def close(self) -> None:
        self._tracer._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.close()
        return False


class _NullSpan:
    """Shared no-op span handle: every method discards its arguments."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def update(self, **attrs: Any) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing default: keeps instrumented hot paths free.

    ``span`` hands back one preallocated :class:`_NullSpan`, so with
    tracing off an instrumented loop costs one attribute lookup and one
    call per stage — no allocations, no timestamps.
    """

    __slots__ = ()

    active = False

    def span(self, name: str, /, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def absorb(
        self,
        spans: List[Any],
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        source: Optional[str] = None,
        rebase: bool = True,
    ) -> None:
        pass

    def counter(self, name: str, value: Union[int, float] = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


NULL_TRACER = NullTracer()

TracerLike = Union["Tracer", NullTracer]


def as_tracer(tracer: Optional[TracerLike]) -> TracerLike:
    """Normalize an optional ``tracer=`` argument to a usable tracer."""
    return NULL_TRACER if tracer is None else tracer


class Tracer:
    """Recording tracer: spans nest on an explicit stack.

    Parameters
    ----------
    manifest:
        Run-level metadata (grid size, Reynolds, seed, code version...)
        exported as the JSONL header line by
        :func:`repro.trace.exporter.write_trace`.
    clock:
        Monotonic time source; injectable for tests.
    """

    active = True

    def __init__(
        self,
        manifest: Optional[Dict[str, Any]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.manifest: Dict[str, Any] = dict(manifest or {})
        self._clock = clock
        self._stack: List[Span] = []
        self._next_id = 1
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # -- spans --------------------------------------------------------

    def span(self, name: str, /, **attrs: Any) -> Span:
        """Open a child span of whatever span is currently innermost.

        ``name`` is positional-only so an attribute literally named
        ``name`` (or ``self``) stays an attribute instead of colliding
        with the parameter.
        """
        parent = self._stack[-1] if self._stack else None
        handle = Span(
            tracer=self,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=str(name),
            depth=len(self._stack),
            t_start=self._clock(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(handle)
        return handle

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            open_names = [s.name for s in self._stack]
            raise TraceNestingError(
                f"span {span.name!r} closed out of order; open stack: {open_names}"
            )
        self._stack.pop()
        self.spans.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                depth=span.depth,
                t_start=span.t_start,
                t_end=self._clock(),
                attrs=span.attrs,
            )
        )

    @property
    def open_depth(self) -> int:
        """Number of spans currently open (0 when fully closed)."""
        return len(self._stack)

    def check_closed(self) -> None:
        """Raise if any span is still open (export-time hygiene)."""
        if self._stack:
            raise TraceNestingError(
                f"{len(self._stack)} span(s) still open: "
                f"{[s.name for s in self._stack]}"
            )

    # -- grafting -------------------------------------------------------

    def absorb(
        self,
        spans: List[Any],
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        source: Optional[str] = None,
        rebase: bool = True,
    ) -> None:
        """Graft completed span records from another tracer into this one.

        The runtime's worker processes each record their own tracer (a
        tracer cannot be shared across process boundaries); the parent
        absorbs the returned records so the merged trace reads as one
        story. Spans may be :class:`SpanRecord` instances or their
        ``to_record()`` dicts. Ids are renumbered into this tracer's
        namespace, shard-local parent links are preserved, and spans
        with no parent are attached to the currently innermost open
        span (the parent's ``solve_attempt``). Counters are summed;
        gauges take the absorbed value.

        ``rebase`` (default on) re-bases the absorbed timestamps onto
        *this* tracer's clock: ``time.perf_counter()`` has a
        per-process origin, so a pool worker's raw ``t_start``/``t_end``
        are not comparable to the parent's spans. The absorbed window
        is shifted rigidly so its latest ``t_end`` lands at the parent
        clock's *now* (the worker finished just before the parent
        processed its report); durations are differences, so every span
        and phase-sum duration is preserved exactly, while the merged
        timeline becomes monotone on one clock. Pass ``rebase=False``
        to keep raw foreign timestamps (e.g. when replaying records
        already on this clock).
        """
        parent = self._stack[-1] if self._stack else None
        base_depth = len(self._stack)
        records = [span if isinstance(span, dict) else span.to_record() for span in spans]
        offset = 0.0
        if rebase and records:
            latest_end = max(float(record.get("t_end", 0.0)) for record in records)
            offset = self._clock() - latest_end
        id_map: Dict[int, int] = {}
        for record in records:
            id_map[record["id"]] = self._next_id
            self._next_id += 1
        for record in records:
            attrs = dict(record.get("attrs") or {})
            if source is not None:
                attrs.setdefault("source", source)
            old_parent = record.get("parent")
            if old_parent is not None and old_parent in id_map:
                new_parent: Optional[int] = id_map[old_parent]
            else:
                new_parent = parent.span_id if parent is not None else None
            self.spans.append(
                SpanRecord(
                    span_id=id_map[record["id"]],
                    parent_id=new_parent,
                    name=record["name"],
                    depth=base_depth + int(record.get("depth", 0)),
                    t_start=float(record.get("t_start", 0.0)) + offset,
                    t_end=float(record.get("t_end", 0.0)) + offset,
                    attrs=attrs,
                )
            )
        for name, value in (counters or {}).items():
            self.counter(name, value)
        for name, value in (gauges or {}).items():
            self.gauge(name, value)

    # -- counters and gauges --------------------------------------------

    def counter(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to a named monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a named gauge."""
        self.gauges[name] = float(value)

    # -- queries ----------------------------------------------------------

    def spans_named(self, name: str) -> List[SpanRecord]:
        return [record for record in self.spans if record.name == name]

    def total_duration(self, name: str) -> float:
        return sum(record.duration for record in self.spans_named(name))
