"""Request/record contract of the sharded solve service.

The service layer speaks in three shapes. A submission is a
:class:`~repro.runtime.api.SolveRequest` plus *service* metadata
(tenant, priority) that the solver layers never see. Every admitted
request ends in exactly one :class:`ServiceRecord` — the terminal
:class:`~repro.runtime.api.SolveOutcome` annotated with how the
service got it there (which shard, how many fail-overs, whether it
was replayed from a dead shard's journal). Every rejected request
ends in exactly one :class:`Rejection` carrying a machine-readable
reason — the admission contract is reject-with-reason, never silent
drop. A drained service hands back one :class:`ServiceResult` holding
all of it plus the merged counters and throughput/latency figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.reporting import ascii_table
from repro.runtime.api import SolveOutcome

__all__ = [
    "REJECTION_REASONS",
    "ServiceRejected",
    "ShardDied",
    "Rejection",
    "ServiceRecord",
    "ShardSummary",
    "ServiceResult",
]

# The only reasons an admission rejection may carry.
REJECTION_REASONS = (
    "queue_full",
    "tenant_quota",
    "duplicate_request",
    "service_stopped",
)


class ServiceRejected(RuntimeError):
    """Admission control refused a request; ``reason`` says why."""

    def __init__(self, reason: str, detail: str = ""):
        if reason not in REJECTION_REASONS:
            raise ValueError(f"unknown rejection reason {reason!r}")
        self.reason = reason
        super().__init__(f"{reason}: {detail}" if detail else reason)


class ShardDied(RuntimeError):
    """A shard's runtime crashed mid-window (its pool broke).

    Raised by :meth:`repro.service.shard.Shard.run_window`; the service
    catches it, recovers committed outcomes from the shard's journal,
    and fails the rest of the window over to surviving shards.
    """


@dataclass(frozen=True)
class Rejection:
    """One refused submission: who asked, and the reason given."""

    request_id: str
    tenant: str
    reason: str


@dataclass
class ServiceRecord:
    """The terminal record of one admitted request.

    Wraps the runtime's :class:`~repro.runtime.api.SolveOutcome` with
    the service-level story: the shard that produced the outcome,
    how many times the request failed over off a dead shard, and
    whether the outcome was replayed from a journal rather than
    re-solved.
    """

    outcome: SolveOutcome
    tenant: str = "default"
    priority: int = 0
    shard: str = "?"
    failovers: int = 0
    replayed_from_journal: bool = False
    latency_seconds: float = 0.0

    @property
    def request_id(self) -> str:
        return self.outcome.request_id

    @property
    def ok(self) -> bool:
        return self.outcome.ok


@dataclass
class ShardSummary:
    """One shard's lifetime, as the drained service reports it."""

    name: str
    status: str  # "healthy" | "dead" | "lifeboat"
    windows: int = 0
    dispatched: int = 0
    converged: int = 0
    failed: int = 0


@dataclass
class ServiceResult:
    """Everything a drained service produced, submission order preserved."""

    records: List[ServiceRecord] = field(default_factory=list)
    rejections: List[Rejection] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    shards: List[ShardSummary] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    requests_per_second: float = 0.0
    latency_p50: float = 0.0
    latency_p99: float = 0.0
    trace_path: Optional[Path] = None
    fleet: Optional[Dict[str, Any]] = None

    def record_for(self, request_id: str) -> Optional[ServiceRecord]:
        for record in self.records:
            if record.request_id == request_id:
                return record
        return None

    @property
    def completed(self) -> int:
        return sum(1 for record in self.records if record.ok)

    @property
    def failed(self) -> int:
        return sum(1 for record in self.records if not record.ok)

    def render(self) -> str:
        """Multi-table summary; all wall-clock figures stay on the one
        ``timing:`` line so regression tooling can mask it."""
        headline = (
            f"solve service: {len(self.records)} request(s) across "
            f"{len(self.shards)} shard(s), {self.completed} converged / "
            f"{self.failed} not, {len(self.rejections)} rejected"
        )
        request_rows = [
            {
                "request": record.request_id,
                "tenant": record.tenant,
                "prio": record.priority,
                "shard": record.shard,
                "status": record.outcome.status,
                "rung": record.outcome.rung or "-",
                "attempts": record.outcome.attempts,
                "failovers": record.failovers,
                "replayed": "yes" if record.replayed_from_journal else "-",
            }
            for record in self.records
        ]
        shard_rows = [
            {
                "shard": shard.name,
                "status": shard.status,
                "windows": shard.windows,
                "dispatched": shard.dispatched,
                "converged": shard.converged,
                "failed": shard.failed,
            }
            for shard in self.shards
        ]
        parts = [headline, ascii_table(request_rows), ascii_table(shard_rows)]
        if self.rejections:
            parts.append(
                ascii_table(
                    [
                        {
                            "rejected": rejection.request_id,
                            "tenant": rejection.tenant,
                            "reason": rejection.reason,
                        }
                        for rejection in self.rejections
                    ]
                )
            )
        if self.fleet is not None:
            parts.append(
                ascii_table(
                    [
                        {
                            "board": row["board"],
                            "epoch": row["epoch"],
                            "routed": row["routed"],
                            "vetoes": row["vetoes"],
                            "quarantined": "yes" if row["quarantined"] else "-",
                            "killed": "yes" if row["killed"] else "-",
                        }
                        for row in self.fleet.get("boards", [])
                    ]
                )
            )
        if self.counters:
            parts.append(
                ascii_table(
                    [
                        {"counter": name, "value": self.counters[name]}
                        for name in sorted(self.counters)
                    ]
                )
            )
        parts.append(
            "timing: "
            f"elapsed={self.elapsed_seconds:.2f}s "
            f"throughput={self.requests_per_second:.1f}req/s "
            f"p50={self.latency_p50:.3f}s p99={self.latency_p99:.3f}s"
        )
        return "\n\n".join(parts)
