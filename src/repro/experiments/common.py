"""Shared experiment protocol pieces (Section 6.1's setup).

The Figure 7 protocol compares the baseline digital solver and the
simulated analog accelerator *at equal accuracy*: "Both the baseline
digital solver and the simulated analog solver are stopped when their
error metric defined in Equation 6 reaches 5.38%, the value we measured
from the analog accelerator chip."

:func:`equal_accuracy_damped_newton` implements the digital side: the
damped Newton iteration with the paper's halving restart schedule,
stopped the moment the Equation 6 error against the golden solution
drops below the target. Iteration and inner-solve counts feed the CPU
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analog.engine import solution_error
from repro.linalg.kernel import LinearKernel, LinearSolverStats
from repro.nonlinear.newton import _traced_linear_solve
from repro.nonlinear.systems import NonlinearSystem
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["EqualAccuracyResult", "equal_accuracy_damped_newton", "ANALOG_ERROR_TARGET"]

# The chip's measured total RMS error (Figure 6), used as the
# equal-accuracy stopping threshold in Figure 7.
ANALOG_ERROR_TARGET = 0.0538


@dataclass
class EqualAccuracyResult:
    """Digital solve stopped at the analog accuracy level."""

    u: np.ndarray
    reached_target: bool
    iterations: int
    total_iterations_including_restarts: int
    damping_used: float
    restarts: int
    inner_iterations: int
    linear_solves: int
    total_inner_iterations: int = 0
    total_linear_solves: int = 0
    preconditioner_builds: int = 0

    @property
    def mean_inner_per_newton(self) -> float:
        return self.inner_iterations / max(self.linear_solves, 1)


def equal_accuracy_damped_newton(
    system: NonlinearSystem,
    initial_guess: np.ndarray,
    golden: np.ndarray,
    scale: float,
    target_error: float = ANALOG_ERROR_TARGET,
    max_iterations: int = 200,
    min_damping: float = 1.0 / 1024.0,
    divergence_threshold: float = 1e6,
    kernel: Optional[LinearKernel] = None,
    tracer: Optional[TracerLike] = None,
) -> EqualAccuracyResult:
    """Damped Newton, halving on failure, stopped at the error target.

    ``scale`` maps solutions into the analog dynamic range so the error
    metric matches Equation 6's scaled form. Following the paper's
    charitable accounting, ``iterations`` counts only the successful
    damping's run; the honest total is also reported
    (``total_iterations_including_restarts``, ``total_inner_iterations``
    and ``total_linear_solves`` include every failed attempt).

    One :class:`~repro.linalg.kernel.LinearKernel` is shared across
    every damping attempt (pass ``kernel`` to share it with other
    solves of the same problem), so the preconditioner is factorized
    once per sparsity pattern instead of once per attempt.

    ``tracer`` records one ``newton_attempt`` span per damping level and
    one ``linear_solve`` span per inner kernel call, carrying that
    call's exact share of the kernel counters.
    """
    golden = np.asarray(golden, dtype=float)
    kernel = kernel or LinearKernel()
    tracer = as_tracer(tracer)
    damping = 1.0
    restarts = 0
    total_iterations = 0
    total_stats = LinearSolverStats()
    builds_before = kernel.stats.preconditioner_builds
    last_u = np.asarray(initial_guess, dtype=float)

    while damping >= min_damping:
        stats = LinearSolverStats()
        u = np.array(initial_guess, dtype=float, copy=True)
        initial_norm = max(system.residual_norm(u), 1e-300)
        performed = 0
        diverged = False
        with tracer.span("newton_attempt", damping=damping, restart=restarts) as attempt:
            for _ in range(max_iterations):
                if solution_error(u / scale, golden / scale) <= target_error:
                    break
                residual = system.residual(u)
                jacobian = system.jacobian(u)
                try:
                    delta = _traced_linear_solve(
                        tracer, kernel, None, jacobian, residual, stats
                    )
                except Exception:
                    diverged = True
                    break
                u = u - damping * delta
                performed += 1
                if not np.all(np.isfinite(u)) or (
                    system.residual_norm(u) > divergence_threshold * initial_norm
                ):
                    diverged = True
                    break
            attempt.update(iterations=performed, diverged=diverged)
        total_iterations += performed
        total_stats.merge(stats)
        if not diverged and solution_error(u / scale, golden / scale) <= target_error:
            return EqualAccuracyResult(
                u=u,
                reached_target=True,
                iterations=performed,
                total_iterations_including_restarts=total_iterations,
                damping_used=damping,
                restarts=restarts,
                inner_iterations=stats.inner_iterations,
                linear_solves=stats.solves,
                total_inner_iterations=total_stats.inner_iterations,
                total_linear_solves=total_stats.solves,
                preconditioner_builds=kernel.stats.preconditioner_builds - builds_before,
            )
        last_u = u
        restarts += 1
        damping /= 2.0
    return EqualAccuracyResult(
        u=last_u,
        reached_target=False,
        iterations=max_iterations,
        total_iterations_including_restarts=total_iterations,
        damping_used=damping * 2.0,
        restarts=restarts,
        inner_iterations=0,
        linear_solves=0,
        total_inner_iterations=total_stats.inner_iterations,
        total_linear_solves=total_stats.solves,
        preconditioner_builds=kernel.stats.preconditioner_builds - builds_before,
    )
