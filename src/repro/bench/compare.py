"""The perf regression gate: compare two ``BENCH_<n>.json`` reports.

``repro bench --compare BENCH_<n-1>.json`` (and the CI wrapper
``scripts/check_bench_regression.py``) diff a candidate report against
a baseline on the suite's **named hot paths** and fail on regressions
past tolerance. Two metric kinds with different physics:

* ``work`` — deterministic effort (Newton iterations, linear solves,
  inner iterations, modeled speedup). Bitwise reproducible at fixed
  seed/scale, so they are compared with a *tight* tolerance (default
  1%) and are meaningful across machines — this is what the CI gate
  leans on (``work_only=True``).
* ``time`` — wall-clock and span-duration sums. Machine- and
  load-dependent, so the default tolerance is generous (20%) and CI
  skips them against a snapshot committed from different hardware.

Improvements never fail; only the regression direction is gated (for
``modeled_speedup`` the regression direction is *down*). A hot-path
metric missing from the candidate is itself a failure — deleting the
instrumentation must not green the gate — while a metric missing from
the *baseline* is merely reported (new benchmarks appear over time).
Reports at different scale or seed are refused outright rather than
compared apples-to-oranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bench.schema import BenchReport
from repro.reporting import ascii_table

__all__ = [
    "HOT_PATHS",
    "HotPath",
    "MetricComparison",
    "ComparisonResult",
    "ScaleMismatch",
    "compare_reports",
]

DEFAULT_TIME_TOLERANCE = 0.20
DEFAULT_WORK_TOLERANCE = 0.01


class ScaleMismatch(ValueError):
    """Baseline and candidate were run at different scale or seed."""


@dataclass(frozen=True)
class HotPath:
    """One gated metric: where it lives and how it may regress.

    ``kind`` is ``"time"`` or ``"work"``; ``higher_is_better`` flips
    the regression direction (modeled speedup must not *drop*).
    """

    benchmark: str
    metric: str
    kind: str
    higher_is_better: bool = False

    @property
    def label(self) -> str:
        return f"{self.benchmark}:{self.metric}"


# The named hot paths every speed PR is gated against. Span sums name
# the stages the roadmap's compiled-backend work will move; the work
# metrics pin convergence behaviour (a "speedup" that converges less
# is a regression, not a win).
HOT_PATHS: Tuple[HotPath, ...] = (
    # trajectory: the implicit method-of-lines path.
    HotPath("trajectory", "wall_seconds", "time"),
    HotPath("trajectory", "span_seconds.linear_solve", "time"),
    HotPath("trajectory", "work.newton_iterations", "work"),
    HotPath("trajectory", "work.linear_solves", "work"),
    HotPath("trajectory", "work.inner_iterations", "work"),
    # figure8: the headline seeding claim.
    HotPath("figure8_seeding", "wall_seconds", "time"),
    HotPath("figure8_seeding", "span_seconds.linear_solve", "time"),
    HotPath("figure8_seeding", "span_seconds.analog_settle", "time"),
    HotPath("figure8_seeding", "work.inner_iterations", "work"),
    HotPath("figure8_seeding", "work.modeled_speedup", "work", higher_is_better=True),
    # serve-batch: the runtime orchestration overhead.
    HotPath("serve_batch", "wall_seconds", "time"),
    HotPath("serve_batch", "work.requests_completed", "work", higher_is_better=True),
    HotPath("serve_batch", "work.newton_iterations", "work"),
    # kernel microbench: assembly + matvec + cached-factorization solve.
    HotPath("kernel_micro", "span_seconds.stencil_assembly", "time"),
    HotPath("kernel_micro", "span_seconds.csr_matvec", "time"),
    HotPath("kernel_micro", "span_seconds.linear_solve", "time"),
    HotPath("kernel_micro", "work.inner_iterations", "work"),
    HotPath("kernel_micro", "work.preconditioner_builds", "work"),
    # service soak: sustained throughput at fixed p99 through the
    # sharded async service (requests/sec must not drop, tail latency
    # must not grow; the work metrics pin exactly-once accounting).
    HotPath("service_soak", "wall_seconds", "time"),
    HotPath("service_soak", "counters.service_requests_per_sec", "time", higher_is_better=True),
    HotPath("service_soak", "counters.service_p99_latency_s", "time"),
    HotPath("service_soak", "work.requests_completed", "work", higher_is_better=True),
    HotPath("service_soak", "work.runtime_attempts", "work"),
    HotPath("service_soak", "work.newton_iterations", "work"),
    # fleet soak: the board-fleet management layer. The veto count is
    # gated in both directions by proxy: fewer settles avoided at equal
    # drift means the predictive gate stopped paying for itself
    # (higher_is_better), while the attempt/settle counts catch the
    # fleet burning extra work to get there.
    HotPath("fleet_soak", "wall_seconds", "time"),
    HotPath("fleet_soak", "span_seconds.analog_settle", "time"),
    HotPath("fleet_soak", "work.requests_completed", "work", higher_is_better=True),
    HotPath("fleet_soak", "work.runtime_attempts", "work"),
    HotPath("fleet_soak", "work.settles_avoided", "work", higher_is_better=True),
    HotPath("fleet_soak", "work.analog_settles", "work"),
    # certify soak: the certification layer. The overhead ratio is
    # wall-clock based (machine-dependent, so kind "time" — skipped by
    # the cross-machine CI gate); the work metrics pin the defense:
    # every injected corruption caught, escalated, and blamed, with no
    # lost requests.
    HotPath("certify_soak", "wall_seconds", "time"),
    HotPath("certify_soak", "counters.certify_overhead_ratio", "time"),
    HotPath("certify_soak", "work.requests_completed", "work", higher_is_better=True),
    HotPath("certify_soak", "work.corruption_caught", "work", higher_is_better=True),
    HotPath("certify_soak", "work.resolves_triggered", "work"),
    HotPath("certify_soak", "work.certificates_failed", "work"),
    HotPath("certify_soak", "work.bitwise_identical", "work", higher_is_better=True),
)


@dataclass
class MetricComparison:
    """One hot-path metric's verdict."""

    path: HotPath
    baseline: Optional[float]
    candidate: Optional[float]
    tolerance: float
    status: str  # "ok" | "improved" | "regressed" | "missing" | "new" | "skipped"

    @property
    def change(self) -> Optional[float]:
        """Relative change (positive = candidate larger); None if
        either side is absent or the baseline is zero."""
        if self.baseline is None or self.candidate is None or self.baseline == 0:
            return None
        return (self.candidate - self.baseline) / abs(self.baseline)

    def row(self) -> dict:
        change = self.change
        return {
            "hot path": self.path.label,
            "kind": self.path.kind,
            "baseline": "-" if self.baseline is None else f"{self.baseline:.6g}",
            "candidate": "-" if self.candidate is None else f"{self.candidate:.6g}",
            "change": "-" if change is None else f"{100 * change:+.1f}%",
            "tolerance": f"{100 * self.tolerance:.0f}%",
            "status": self.status.upper() if self.status == "regressed" else self.status,
        }


@dataclass
class ComparisonResult:
    """Every hot-path verdict plus the overall gate decision."""

    comparisons: List[MetricComparison]
    baseline_label: str
    candidate_label: str
    work_only: bool = False

    @property
    def regressions(self) -> List[MetricComparison]:
        return [c for c in self.comparisons if c.status in ("regressed", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"bench comparison: {self.baseline_label} (baseline) vs "
            f"{self.candidate_label} (candidate)"
            + (" [work metrics only]" if self.work_only else ""),
            ascii_table([comparison.row() for comparison in self.comparisons]),
        ]
        if self.ok:
            lines.append("gate: OK — no hot-path regression past tolerance")
        else:
            names = ", ".join(c.path.label for c in self.regressions)
            lines.append(f"gate: FAIL — {len(self.regressions)} regression(s): {names}")
        return "\n\n".join(lines)


def compare_reports(
    baseline: BenchReport,
    candidate: BenchReport,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    work_tolerance: float = DEFAULT_WORK_TOLERANCE,
    work_only: bool = False,
    hot_paths: Sequence[HotPath] = HOT_PATHS,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> ComparisonResult:
    """Gate ``candidate`` against ``baseline`` on the named hot paths."""
    if baseline.scale != candidate.scale or baseline.seed != candidate.seed:
        raise ScaleMismatch(
            f"reports are not comparable: baseline is scale={baseline.scale!r} "
            f"seed={baseline.seed}, candidate is scale={candidate.scale!r} "
            f"seed={candidate.seed}; rerun `repro bench` at the baseline's "
            "scale and seed"
        )
    comparisons: List[MetricComparison] = []
    for path in hot_paths:
        tolerance = work_tolerance if path.kind == "work" else time_tolerance
        old_bench = baseline.benchmarks.get(path.benchmark)
        new_bench = candidate.benchmarks.get(path.benchmark)
        old = old_bench.metric(path.metric) if old_bench is not None else None
        new = new_bench.metric(path.metric) if new_bench is not None else None
        if work_only and path.kind != "work":
            comparisons.append(MetricComparison(path, old, new, tolerance, "skipped"))
            continue
        if new is None:
            # Losing the instrumentation (or the benchmark) must fail
            # the gate: an invisible hot path is an ungated one.
            status = "missing" if old is not None else "skipped"
            comparisons.append(MetricComparison(path, old, new, tolerance, status))
            continue
        if old is None:
            comparisons.append(MetricComparison(path, old, new, tolerance, "new"))
            continue
        if old == 0:
            status = "ok" if new == 0 else ("improved" if path.higher_is_better else "regressed")
            comparisons.append(MetricComparison(path, old, new, tolerance, status))
            continue
        change = (new - old) / abs(old)
        worse = -change if path.higher_is_better else change
        if worse > tolerance:
            status = "regressed"
        elif worse < 0:
            status = "improved"
        else:
            status = "ok"
        comparisons.append(MetricComparison(path, old, new, tolerance, status))
    return ComparisonResult(
        comparisons=comparisons,
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        work_only=work_only,
    )
