"""1-D viscous Burgers with selectable finite-difference order.

Section 7 of the paper: "Higher-order finite difference schemes are
more accurate and efficient, at the cost of having larger stencils,
thereby requiring a larger accelerator." This module makes that
trade-off concrete: the 1-D viscous Burgers stencil

    u + weight * (u u_x - u_xx / Re) = rhs

is available with second-order (3-point) and fourth-order (5-point)
central differences. The fourth-order stencil needs two ghost values
per side; the second ghost is quadratically extrapolated from the
boundary value and the first interior nodes, preserving the scheme's
order at Dirichlet boundaries.

The 1-D stencil is also the *line kernel* of the dimension-split 3-D
solver (:mod:`repro.pde.burgers3d`), the practical decoupling Section 7
notes keeps analog acceleration applicable to 3-D models.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.linalg.sparse import CsrMatrix, csr_from_triplets
from repro.nonlinear.systems import NonlinearSystem

__all__ = ["Burgers1DStencilSystem", "stencil_width"]


def stencil_width(order: int) -> int:
    """Stencil points per node — the accelerator tile-input cost driver."""
    if order == 2:
        return 3
    if order == 4:
        return 5
    raise ValueError(f"supported orders are 2 and 4, got {order}")


class Burgers1DStencilSystem(NonlinearSystem):
    """One implicit step of 1-D viscous Burgers as ``F(u) = 0``."""

    def __init__(
        self,
        num_nodes: int,
        reynolds: float,
        rhs: np.ndarray,
        left: float = 0.0,
        right: float = 0.0,
        weight: float = 1.0,
        spacing: float = 1.0,
        order: int = 2,
    ):
        if num_nodes < 3:
            raise ValueError("need at least 3 interior nodes")
        if reynolds <= 0.0:
            raise ValueError("Reynolds number must be positive")
        if weight <= 0.0 or spacing <= 0.0:
            raise ValueError("weight and spacing must be positive")
        stencil_width(order)  # validates order
        self.dimension = num_nodes
        self.reynolds = float(reynolds)
        self.weight = float(weight)
        self.spacing = float(spacing)
        self.order = int(order)
        self.left = float(left)
        self.right = float(right)
        self.rhs = np.asarray(rhs, dtype=float)
        if self.rhs.shape != (num_nodes,):
            raise ValueError(f"rhs must have shape ({num_nodes},)")

    # -- padding ----------------------------------------------------------

    def _padded(self, u: np.ndarray) -> np.ndarray:
        """Two ghost layers per side; the outer ghost is a cubic
        extrapolation through the boundary value and the first three
        interior nodes, preserving fourth-order accuracy at the ends."""
        ghost_left = 4.0 * self.left - 6.0 * u[0] + 4.0 * u[1] - u[2]
        ghost_right = 4.0 * self.right - 6.0 * u[-1] + 4.0 * u[-2] - u[-3]
        return np.concatenate([[ghost_left, self.left], u, [self.right, ghost_right]])

    # -- derivative operators ---------------------------------------------

    def _first_derivative(self, padded: np.ndarray) -> np.ndarray:
        h = self.spacing
        core = padded[2:-2]
        if self.order == 2:
            return (padded[3:-1] - padded[1:-3]) / (2.0 * h)
        return (
            -padded[4:] + 8.0 * padded[3:-1] - 8.0 * padded[1:-3] + padded[:-4]
        ) / (12.0 * h)

    def _second_derivative(self, padded: np.ndarray) -> np.ndarray:
        h = self.spacing
        core = padded[2:-2]
        if self.order == 2:
            return (padded[3:-1] - 2.0 * core + padded[1:-3]) / h**2
        return (
            -padded[4:] + 16.0 * padded[3:-1] - 30.0 * core + 16.0 * padded[1:-3] - padded[:-4]
        ) / (12.0 * h**2)

    # -- NonlinearSystem -----------------------------------------------------

    def residual(self, u: np.ndarray) -> np.ndarray:
        u = self._validate(u)
        padded = self._padded(u)
        ux = self._first_derivative(padded)
        uxx = self._second_derivative(padded)
        return u + self.weight * (u * ux - uxx / self.reynolds) - self.rhs

    def jacobian(self, u: np.ndarray) -> CsrMatrix:
        # The ghost extrapolation couples boundary-adjacent rows to the
        # first two interior nodes with non-stencil weights; rather than
        # hand-derive every case for both orders, assemble the exact
        # Jacobian column-by-column through the residual's linearity in
        # each perturbation direction. O(n) residual evaluations on a
        # banded problem — acceptable for the 1-D line systems this
        # class serves, and exactly consistent with ``residual``.
        u = self._validate(u)
        n = self.dimension
        base_ux, base_uxx, base = self._linear_parts(u)
        rows, cols, vals = [], [], []
        width = stencil_width(self.order)
        half = width // 2 + 1  # extrapolation can widen edge coupling
        for j in range(n):
            lo = max(0, j - half)
            hi = min(n, j + half + 1)
            e = np.zeros(n)
            e[j] = 1.0
            column = self._jacobian_column(u, e)
            nonzero = np.nonzero(np.abs(column) > 0.0)[0]
            rows.append(nonzero)
            cols.append(np.full(nonzero.shape, j))
            vals.append(column[nonzero])
        return csr_from_triplets(
            n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
        )

    def _linear_parts(self, u: np.ndarray):
        padded = self._padded(u)
        return self._first_derivative(padded), self._second_derivative(padded), u

    def _jacobian_column(self, u: np.ndarray, direction: np.ndarray) -> np.ndarray:
        """Exact directional derivative of the residual.

        The residual is quadratic in ``u`` (ghosts are affine in ``u``),
        so dF(u)[e] = e + weight * (e ux + u d(ux)[e] - d(uxx)[e]/Re)
        with the derivative operators applied to ``e`` padded with
        *zero* boundary values (the ghosts' dependence on u is linear
        with the boundary contribution constant).
        """
        padded_u = self._padded(u)
        # Direction padding: boundaries are fixed, so ghost of e uses 0.
        ghost_left = -6.0 * direction[0] + 4.0 * direction[1] - direction[2]
        ghost_right = -6.0 * direction[-1] + 4.0 * direction[-2] - direction[-3]
        padded_e = np.concatenate([[ghost_left, 0.0], direction, [0.0, ghost_right]])
        ux_u = self._first_derivative(padded_u)
        ux_e = self._first_derivative(padded_e)
        uxx_e = self._second_derivative(padded_e)
        return direction + self.weight * (
            direction * ux_u + u * ux_e - uxx_e / self.reynolds
        )

    # -- resource accounting ------------------------------------------------

    def tile_inputs_per_variable(self) -> int:
        """Analog routing cost: neighbour signals each node consumes.

        The Section 7 trade: the fourth-order stencil's two extra
        neighbours per axis enlarge the per-variable crossbar/tile-input
        budget of the accelerator.
        """
        return stencil_width(self.order) - 1
