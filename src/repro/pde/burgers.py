"""The 2-D viscous Burgers' equation (Section 4 of the paper).

The PDE (Equation 4/5 of the paper) for the velocity fields
``u(x, y, t)`` and ``v(x, y, t)``:

    du/dt + u du/dx + v du/dy - (1/Re)(d2u/dx2 + d2u/dy2) = RHS0
    dv/dt + u dv/dx + v dv/dy - (1/Re)(d2v/dx2 + d2v/dy2) = RHS1

Applying second-order central differences in space and Crank-Nicolson
in time, with the paper's isotropic normalization that eliminates the
grid-spacing coefficients, each implicit step requires solving the
nonlinear algebraic system implemented by :class:`BurgersStencilSystem`
(the Fletcher stencil the paper cites at [16, pg. 172]). Its analytic
Jacobian is the sparse block-structured matrix whose diagonal weakens
as the Reynolds number grows — the effect that degrades digital Newton
at ``Re -> 2`` in Figures 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.linalg.sparse import CsrMatrix, csr_from_triplets
from repro.nonlinear.newton import NewtonOptions, NewtonResult, damped_newton_with_restarts
from repro.nonlinear.systems import NonlinearSystem
from repro.pde.boundary import DirichletBoundary
from repro.pde.grid import Grid2D
from repro.pde.stencils import central_x, central_y, laplacian_5pt, pad_with_boundary

__all__ = [
    "BurgersStencilSystem",
    "BurgersTimeStepper",
    "random_burgers_system",
    "reynolds_character",
    "ReynoldsCharacter",
]


class BurgersStencilSystem(NonlinearSystem):
    """One implicit time step of 2-D viscous Burgers as ``F(w) = 0``.

    The unknown vector ``w`` stacks the flattened x-velocity field
    ``u`` (first ``nx * ny`` entries) and y-velocity field ``v``.
    With ``weight`` the Crank-Nicolson coefficient (``dt / 2``; the
    paper's normalization makes it 1), the residual per interior node is

        F_u = u + weight * (u u_x + v u_y - Lap(u)/Re) - rhs_u
        F_v = v + weight * (u v_x + v v_y - Lap(v)/Re) - rhs_v

    with Dirichlet ghost values supplied by the boundaries.
    """

    def __init__(
        self,
        grid: Grid2D,
        reynolds: float,
        rhs_u: np.ndarray,
        rhs_v: np.ndarray,
        boundary_u: DirichletBoundary,
        boundary_v: DirichletBoundary,
        weight: float = 1.0,
    ):
        if reynolds <= 0.0:
            raise ValueError(f"Reynolds number must be positive, got {reynolds}")
        if weight <= 0.0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.grid = grid
        self.reynolds = float(reynolds)
        self.weight = float(weight)
        self.rhs_u = np.asarray(rhs_u, dtype=float)
        self.rhs_v = np.asarray(rhs_v, dtype=float)
        if self.rhs_u.shape != grid.shape or self.rhs_v.shape != grid.shape:
            raise ValueError(f"rhs fields must have shape {grid.shape}")
        boundary_u.validate(grid)
        boundary_v.validate(grid)
        self.boundary_u = boundary_u
        self.boundary_v = boundary_v
        self.dimension = 2 * grid.num_nodes

    # -- state packing ------------------------------------------------

    def split(self, w: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Unpack the stacked unknown vector into (u, v) fields."""
        w = self._validate(w)
        n = self.grid.num_nodes
        return self.grid.field(w[:n]), self.grid.field(w[n:])

    def pack(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Stack (u, v) fields into the unknown vector."""
        return np.concatenate([self.grid.flatten(u), self.grid.flatten(v)])

    # -- NonlinearSystem interface -------------------------------------

    def residual(self, w: np.ndarray) -> np.ndarray:
        u, v = self.split(w)
        up = pad_with_boundary(u, self.boundary_u, self.grid)
        vp = pad_with_boundary(v, self.boundary_v, self.grid)
        dx, dy = self.grid.dx, self.grid.dy
        inv_re = 1.0 / self.reynolds
        f_u = u + self.weight * (
            u * central_x(up, dx) + v * central_y(up, dy) - inv_re * laplacian_5pt(up, dx, dy)
        ) - self.rhs_u
        f_v = v + self.weight * (
            u * central_x(vp, dx) + v * central_y(vp, dy) - inv_re * laplacian_5pt(vp, dx, dy)
        ) - self.rhs_v
        return self.pack(f_u, f_v)

    def jacobian(self, w: np.ndarray) -> CsrMatrix:
        u, v = self.split(w)
        grid = self.grid
        nx, ny, n = grid.nx, grid.ny, grid.num_nodes
        dx, dy = grid.dx, grid.dy
        wgt = self.weight
        inv_re = 1.0 / self.reynolds
        up = pad_with_boundary(u, self.boundary_u, grid)
        vp = pad_with_boundary(v, self.boundary_v, grid)

        ux, uy = central_x(up, dx), central_y(up, dy)
        vx, vy = central_x(vp, dx), central_y(vp, dy)

        jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
        k = (jj * nx + ii).ravel()

        visc_center = 2.0 * inv_re * (1.0 / dx**2 + 1.0 / dy**2)
        adv_e = u / (2.0 * dx)
        adv_n = v / (2.0 * dy)
        visc_x = inv_re / dx**2
        visc_y = inv_re / dy**2

        triplet_rows = []
        triplet_cols = []
        triplet_vals = []

        def add_block(rows, cols, vals, mask=None):
            vals = np.asarray(vals, dtype=float).ravel()
            if vals.shape != rows.shape:
                vals = np.broadcast_to(vals, rows.shape).copy()
            if mask is None:
                triplet_rows.append(rows)
                triplet_cols.append(cols)
                triplet_vals.append(vals)
            else:
                m = mask.ravel()
                triplet_rows.append(rows[m])
                triplet_cols.append(cols[m])
                triplet_vals.append(vals[m])

        east = (ii < nx - 1).ravel()
        west = (ii > 0).ravel()
        north = (jj < ny - 1).ravel()
        south = (jj > 0).ravel()

        for block, (adv_grad_own, cross_grad) in enumerate(((ux, uy), (vy, vx))):
            # block 0: rows are F_u, own field u. block 1: rows F_v, own v.
            row = k + block * n
            col_own = k + block * n
            if block == 0:
                center = 1.0 + wgt * (ux.ravel() + visc_center)
            else:
                center = 1.0 + wgt * (vy.ravel() + visc_center)
            add_block(row, col_own, center)
            add_block(row, col_own + 1, wgt * (adv_e.ravel() - visc_x), east)
            add_block(row, col_own - 1, wgt * (-adv_e.ravel() - visc_x), west)
            add_block(row, col_own + nx, wgt * (adv_n.ravel() - visc_y), north)
            add_block(row, col_own - nx, wgt * (-adv_n.ravel() - visc_y), south)
            # Cross-coupling to the other field at the same node:
            # dF_u/dv = weight * u_y ; dF_v/du = weight * v_x.
            col_other = k + (1 - block) * n
            add_block(row, col_other, wgt * cross_grad.ravel())

        return csr_from_triplets(
            self.dimension,
            self.dimension,
            np.concatenate(triplet_rows),
            np.concatenate(triplet_cols),
            np.concatenate(triplet_vals),
        )

    # -- diagnostics ----------------------------------------------------

    def diagonal_dominance(self, w: np.ndarray) -> float:
        """Minimum over rows of |diag| / sum|off-diag| for the Jacobian.

        As the Reynolds number grows "the elements on the diagonal of
        the Jacobian diminish ... increasing the chance the Jacobian
        becomes singular" (Section 6.1); this ratio quantifies it.
        """
        jac = self.jacobian(w)
        diag = np.abs(jac.diagonal())
        ratios = []
        for i in range(jac.num_rows):
            cols, vals = jac.row(i)
            off = float(np.sum(np.abs(vals[cols != i])))
            ratios.append(diag[i] / off if off > 0 else np.inf)
        return float(np.min(ratios))


class BurgersTimeStepper:
    """Crank-Nicolson time evolution of the 2-D Burgers' equation.

    Each :meth:`step` forms the per-step nonlinear system (a
    :class:`BurgersStencilSystem` with ``weight = dt / 2`` and the
    right-hand side built from the explicit half of the trapezoid) and
    solves it with a pluggable nonlinear solver — the paper's hybrid
    pipeline injects the analog-seeded solver here.
    """

    def __init__(
        self,
        grid: Grid2D,
        reynolds: float,
        dt: float,
        boundary_u: DirichletBoundary,
        boundary_v: DirichletBoundary,
        forcing_u: Optional[np.ndarray] = None,
        forcing_v: Optional[np.ndarray] = None,
        solver: Optional[Callable[[NonlinearSystem, np.ndarray], NewtonResult]] = None,
    ):
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.grid = grid
        self.reynolds = float(reynolds)
        self.dt = float(dt)
        self.boundary_u = boundary_u
        self.boundary_v = boundary_v
        self.forcing_u = np.zeros(grid.shape) if forcing_u is None else np.asarray(forcing_u, dtype=float)
        self.forcing_v = np.zeros(grid.shape) if forcing_v is None else np.asarray(forcing_v, dtype=float)
        self._solver = solver or (
            lambda system, guess: damped_newton_with_restarts(
                system, guess, NewtonOptions(tolerance=1e-10, max_iterations=100)
            )
        )

    def _spatial_operator(self, u: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The advective-diffusive operator N(u, v) at the current time."""
        up = pad_with_boundary(u, self.boundary_u, self.grid)
        vp = pad_with_boundary(v, self.boundary_v, self.grid)
        dx, dy = self.grid.dx, self.grid.dy
        inv_re = 1.0 / self.reynolds
        n_u = u * central_x(up, dx) + v * central_y(up, dy) - inv_re * laplacian_5pt(up, dx, dy)
        n_v = u * central_x(vp, dx) + v * central_y(vp, dy) - inv_re * laplacian_5pt(vp, dx, dy)
        return n_u, n_v

    def step_system(self, u: np.ndarray, v: np.ndarray) -> BurgersStencilSystem:
        """Build the nonlinear system whose root is the next time level."""
        half = self.dt / 2.0
        n_u, n_v = self._spatial_operator(u, v)
        rhs_u = u - half * n_u + self.dt * self.forcing_u
        rhs_v = v - half * n_v + self.dt * self.forcing_v
        return BurgersStencilSystem(
            grid=self.grid,
            reynolds=self.reynolds,
            rhs_u=rhs_u,
            rhs_v=rhs_v,
            boundary_u=self.boundary_u,
            boundary_v=self.boundary_v,
            weight=half,
        )

    def step(self, u: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray, NewtonResult]:
        """Advance one time step; returns the new fields and the solver
        result (so callers can account iterations and convergence)."""
        system = self.step_system(u, v)
        guess = system.pack(u, v)  # previous time level seeds the solve
        result = self._solver(system, guess)
        u_next, v_next = system.split(result.u)
        return u_next, v_next, result

    def evolve(
        self, u0: np.ndarray, v0: np.ndarray, num_steps: int
    ) -> Tuple[np.ndarray, np.ndarray, list]:
        """Run ``num_steps`` of Crank-Nicolson; returns final fields and
        the per-step solver results."""
        u, v = np.asarray(u0, dtype=float), np.asarray(v0, dtype=float)
        results = []
        for _ in range(num_steps):
            u, v, result = self.step(u, v)
            results.append(result)
            if not result.converged:
                break
        return u, v, results


def random_burgers_system(
    n: int,
    reynolds: float,
    rng: np.random.Generator,
    rhs_range: float = 3.0,
    boundary_range: float = 1.0,
) -> Tuple[BurgersStencilSystem, np.ndarray]:
    """A randomly generated Burgers stencil problem plus initial guess.

    Mirrors the paper's experimental setup: "The constants in the
    nonlinear system of equations are randomly chosen between a dynamic
    range of -3.0 and 3.0" (Section 5.4) and "initial and boundary
    conditions ... randomly chosen within the dynamic range of the
    analog accelerator" (Section 6.1).
    """
    grid = Grid2D.square(n)
    system = BurgersStencilSystem(
        grid=grid,
        reynolds=reynolds,
        rhs_u=rng.uniform(-rhs_range, rhs_range, grid.shape),
        rhs_v=rng.uniform(-rhs_range, rhs_range, grid.shape),
        boundary_u=DirichletBoundary.random(grid, rng, -boundary_range, boundary_range),
        boundary_v=DirichletBoundary.random(grid, rng, -boundary_range, boundary_range),
    )
    guess = rng.uniform(-boundary_range, boundary_range, system.dimension)
    return system, guess


@dataclass(frozen=True)
class ReynoldsCharacter:
    """Qualitative PDE character at a Reynolds number (Table 2)."""

    reynolds: float
    regime: str  # "large" or "small"
    mach: str
    viscosity: str
    diffusion_effect: str
    dominant_character: str
    nonlinearity: str


def reynolds_character(reynolds: float, threshold: float = 1.0) -> ReynoldsCharacter:
    """Classify the Burgers'/Navier-Stokes behaviour per Table 2.

    Larger Reynolds numbers weaken diffusion, making the PDE first-order
    advective (hyperbolic character) and quasilinear — the harder
    problems; small Reynolds numbers give a diffusive parabolic PDE
    closer to semilinear behaviour.
    """
    if reynolds <= 0.0:
        raise ValueError("Reynolds number must be positive")
    if reynolds > threshold:
        return ReynoldsCharacter(
            reynolds=reynolds,
            regime="large",
            mach="high",
            viscosity="low",
            diffusion_effect="small",
            dominant_character="first-order, advective (hyperbolic PDE)",
            nonlinearity="quasilinear",
        )
    return ReynoldsCharacter(
        reynolds=reynolds,
        regime="small",
        mach="low",
        viscosity="high",
        diffusion_effect="large",
        dominant_character="second-order, diffusive (parabolic PDE)",
        nonlinearity="semilinear",
    )
