"""Settle (steady-state) detection for continuous-time runs.

An analog accelerator run "finishes" when the integrator inputs tend to
zero and the outputs hold steady (Section 2.2 of the paper: "When the
continuous Newton method converges, the inputs to the integrators tend
toward zero, so the output of the integrators are steady, and at that
point we can measure the output using analog-to-digital converters.").

:class:`SettleDetector` encodes that: the state's rate of change must
stay below a threshold for a dwell interval before the run is declared
settled. The settle *time* is the quantity Figure 7 of the paper plots
for the analog solver.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.ode.dormand_prince import integrate_rk45
from repro.ode.solution import OdeSolution

__all__ = ["SettleDetector", "integrate_until_settled"]

Rhs = Callable[[float, np.ndarray], np.ndarray]


class SettleDetector:
    """Declares steady state after a dwell below a derivative threshold.

    Parameters
    ----------
    derivative_tolerance:
        Settle fires only while ``max(|dy/dt|)`` stays below this.
    dwell:
        Continuous time the derivative must remain below tolerance.
        A dwell guards against declaring convergence at the slow center
        of a saddle the trajectory is merely passing through.
    """

    def __init__(self, derivative_tolerance: float = 1e-4, dwell: float = 0.1):
        if derivative_tolerance <= 0.0:
            raise ValueError("derivative_tolerance must be positive")
        if dwell < 0.0:
            raise ValueError("dwell must be nonnegative")
        self.derivative_tolerance = derivative_tolerance
        self.dwell = dwell
        self._below_since: Optional[float] = None

    def reset(self) -> None:
        self._below_since = None

    def __call__(self, t: float, y: np.ndarray, dy_dt: np.ndarray) -> bool:
        rate = float(np.max(np.abs(dy_dt))) if dy_dt.size else 0.0
        if rate < self.derivative_tolerance:
            if self._below_since is None:
                self._below_since = t
            return (t - self._below_since) >= self.dwell
        self._below_since = None
        return False


def integrate_until_settled(
    rhs: Rhs,
    y0: np.ndarray,
    time_limit: float,
    derivative_tolerance: float = 1e-4,
    dwell: float = 0.1,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    max_steps: int = 1_000_000,
) -> OdeSolution:
    """Integrate from t=0 until settled or until ``time_limit``.

    Returns an :class:`~repro.ode.solution.OdeSolution` whose
    ``settled`` / ``settle_time`` fields say whether and when the
    detector fired; a run that hits ``time_limit`` without settling is
    the analog analogue of a diverged Newton iteration.
    """
    detector = SettleDetector(derivative_tolerance=derivative_tolerance, dwell=dwell)
    return integrate_rk45(
        rhs,
        0.0,
        y0,
        time_limit,
        rtol=rtol,
        atol=atol,
        max_steps=max_steps,
        step_callback=detector,
    )
