"""The sharded async solve service: admission, routing, fail-over.

:class:`SolveService` is a single-event-loop supervisor over N
:class:`~repro.service.shard.Shard` runtimes. The design keeps all
mutable state on the loop thread — shards execute their windows in
executor threads (each window is a synchronous
:meth:`~repro.runtime.runtime.Runtime.run_batch` call), but every
queue mutation, future resolution, and health transition happens in
loop callbacks, so there are no locks to get wrong.

Lifecycle of a request:

1. **admission** — :meth:`SolveService.submit` consults the bounded
   :class:`~repro.service.admission.AdmissionQueue`; a refusal raises
   :class:`~repro.service.api.ServiceRejected` with a reason
   (``queue_full``/``tenant_quota``/``duplicate_request``/
   ``service_stopped``) and is recorded — never silently dropped.
   Callers that prefer backpressure to refusal await
   :meth:`wait_for_capacity` first.
2. **routing** — the dispatcher pops admitted entries in
   ``(-priority, arrival)`` order and packs them into windows of at
   most ``batch_window`` requests on the lowest-indexed idle healthy
   shard. Requests re-queued by fail-over jump ahead of fresh
   admissions (they were admitted first and have already waited).
3. **fail-over** — a shard whose pool breaks raises
   :class:`~repro.service.api.ShardDied`; the service marks it dead,
   reads its write-ahead journal, resolves every *committed* outcome
   as replayed (no re-solve, counters already absorbed live), and
   re-queues the accepted-but-uncommitted remainder onto surviving
   shards. When every shard is dead a single serial **lifeboat**
   shard is launched so accepted work still reaches terminal
   outcomes; with the lifeboat gone too, remaining requests resolve
   as structured failures (``no healthy shards``) — exactly one
   terminal record per admitted request, no matter what.
4. **drain** — :meth:`drain` stops admission, waits for the queues to
   empty, merges per-shard traces with
   :func:`repro.trace.merge_traces`, and returns a
   :class:`~repro.service.api.ServiceResult`.

Because every shard shares the service seed and all solver streams
are keyed by ``stable_seed(seed, request_id, attempt, ...)``, the
number of shards never changes any request's outcome — only its
placement.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence

from repro.fleet import AnalogFleet
from repro.runtime.api import RetryPolicy, SolveOutcome, SolveRequest
from repro.service.admission import AdmissionQueue
from repro.service.api import (
    Rejection,
    ServiceRecord,
    ServiceRejected,
    ServiceResult,
    ShardDied,
    ShardSummary,
)
from repro.service.shard import Shard
from repro.trace.exporter import merge_traces, write_trace
from repro.trace.tracer import Tracer

__all__ = ["SolveService", "serve_requests"]


@dataclass
class _Item:
    """One admitted request riding through the service."""

    request: SolveRequest
    tenant: str
    priority: int
    future: "asyncio.Future[ServiceRecord]"
    submitted_at: float
    failovers: int = 0


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class SolveService:
    """Async front-end routing a stream of solve requests over shards.

    Parameters
    ----------
    shards:
        Number of :class:`~repro.service.shard.Shard` runtimes.
    workers_per_shard:
        Pool width inside each shard (1 = serial, no real pool).
    queue_limit:
        Admission-queue bound; the backpressure knob.
    batch_window:
        Maximum requests dispatched to a shard per window.
    seed:
        The service seed, shared by every shard (determinism).
    shard_faults:
        Per-shard :class:`~repro.runtime.faults.FaultInjector`
        overrides keyed by shard index (chaos tests target one shard
        without the fault chasing failed-over requests across the
        fleet); ``faults`` is the shared default.
    journal_dir:
        Directory for per-shard write-ahead journals
        (``shard-<i>.journal``); ``None`` disables journaling, which
        turns fail-over into full re-execution of the dead window.
    tenant_quota:
        Optional per-tenant cap on queued requests.
    max_failovers:
        A request bounced off this many dead shards resolves as a
        structured failure instead of bouncing forever.
    fleet:
        A :class:`~repro.fleet.FleetConfig` (or an already-built
        :class:`~repro.fleet.AnalogFleet`) shared by *every* shard —
        the shards are compute placement, the boards are analog
        capacity, and the two fail independently: a killed shard
        replays its window from the journal, a killed board voids only
        the in-flight hybrid answers that came off it. All fleet
        state lives in this (parent) process behind the fleet's own
        lock; shard windows running in executor threads route through
        it concurrently.
    certify:
        A :class:`~repro.certify.CertifyPolicy` (or ``True`` for the
        defaults) shared by every shard: each shard's runtime then
        re-verifies every converged answer through the independent
        certificate before committing it, with escalation re-solves on
        failure (see :class:`~repro.runtime.runtime.Runtime`).
    canary_interval:
        Run a canary sweep (:func:`repro.certify.run_canary_sweep`)
        over the fleet after every N completed service windows: a
        known-answer solve through each eligible board's own silicon
        model, condemning boards whose answers drift before user
        traffic sees them. Requires ``fleet``. Probes use probe-keyed
        seed streams disjoint from traffic, so sweeps never perturb
        request outcomes.
    """

    def __init__(
        self,
        shards: int = 2,
        workers_per_shard: int = 1,
        queue_limit: int = 64,
        batch_window: int = 4,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Any] = None,
        shard_faults: Optional[Dict[int, Any]] = None,
        degradation: Optional[Any] = None,
        ladder_kwargs: Optional[Dict[str, Any]] = None,
        journal_dir: Optional[Path] = None,
        tenant_quota: Optional[int] = None,
        max_failovers: int = 3,
        fleet: Optional[Any] = None,
        certify: Optional[Any] = None,
        canary_interval: Optional[int] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if batch_window < 1:
            raise ValueError("batch_window must be at least 1")
        if canary_interval is not None and canary_interval < 1:
            raise ValueError("canary_interval must be at least 1 when set")
        if canary_interval is not None and fleet is None:
            raise ValueError("canary_interval requires a fleet to probe")
        self.seed = int(seed)
        self.batch_window = int(batch_window)
        self.workers_per_shard = max(1, int(workers_per_shard))
        self.retry = retry
        self.faults = faults
        self.degradation = degradation
        self.ladder_kwargs = ladder_kwargs
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.max_failovers = int(max_failovers)
        if fleet is None:
            self.fleet = None
        elif isinstance(fleet, AnalogFleet):
            self.fleet = fleet
        else:
            self.fleet = AnalogFleet(fleet, degradation=degradation, seed=self.seed)
        self.certify = certify
        self.canary_interval = canary_interval
        self._windows_completed = 0
        self._canary_sweeps = 0
        self._admission = AdmissionQueue(queue_limit, tenant_quota=tenant_quota)
        self._failover: Deque[_Item] = deque()
        self._items: Dict[str, _Item] = {}
        self._order: List[str] = []
        self._records: Dict[str, ServiceRecord] = {}
        self._rejections: List[Rejection] = []
        self._counters: Dict[str, float] = {}
        self._stopping = False
        self._t0 = 0.0
        self._dispatch_task: Optional["asyncio.Task"] = None
        self._window_tasks: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._space: Optional[asyncio.Event] = None
        shard_faults = shard_faults or {}
        self.shards: List[Shard] = [
            Shard(
                name=f"shard-{index}",
                seed=self.seed,
                workers=self.workers_per_shard,
                queue_limit=max(self.batch_window, 1),
                retry=retry,
                faults=shard_faults.get(index, faults),
                degradation=degradation,
                ladder_kwargs=ladder_kwargs,
                journal_path=(
                    self.journal_dir / f"shard-{index}.journal"
                    if self.journal_dir is not None
                    else None
                ),
                fleet=self.fleet,
                certify=certify,
            )
            for index in range(int(shards))
        ]

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "SolveService":
        """Bind to the running loop and start the dispatcher."""
        self._t0 = time.perf_counter()
        self._wake = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()
        self._dispatch_task = asyncio.get_event_loop().create_task(self._dispatch())
        return self

    async def drain(self, trace_path: Optional[Path] = None) -> ServiceResult:
        """Stop admission, run everything to terminal, report."""
        self._stopping = True
        self._wake.set()
        await self._dispatch_task
        if self._window_tasks:
            await asyncio.gather(*self._window_tasks, return_exceptions=True)
        elapsed = time.perf_counter() - self._t0
        for shard in self.shards:
            shard.close()
        records = [self._records[rid] for rid in self._order if rid in self._records]
        counters = dict(self._counters)
        for shard in self.shards:
            for name, value in shard.tracer.counters.items():
                counters[name] = counters.get(name, 0) + value
        latencies = sorted(record.latency_seconds for record in records)
        result = ServiceResult(
            records=records,
            rejections=list(self._rejections),
            counters=counters,
            shards=[
                ShardSummary(
                    name=shard.name,
                    status=shard.status,
                    windows=shard.windows,
                    dispatched=shard.dispatched,
                    converged=shard.converged,
                    failed=shard.failed,
                )
                for shard in self.shards
            ],
            elapsed_seconds=elapsed,
            requests_per_second=(len(records) / elapsed) if elapsed > 0 else 0.0,
            latency_p50=_quantile(latencies, 0.50),
            latency_p99=_quantile(latencies, 0.99),
            fleet=self.fleet.stats() if self.fleet is not None else None,
        )
        if trace_path is not None:
            result.trace_path = self._export_traces(Path(trace_path))
        return result

    def _export_traces(self, trace_path: Path) -> Path:
        """Write one trace per shard (plus the service's own counters)
        as siblings, then merge them into ``trace_path``."""
        service_tracer = Tracer(
            manifest={
                "experiment": "service",
                "seed": self.seed,
                "shards": len(self.shards),
            }
        )
        for name, value in self._counters.items():
            service_tracer.counter(name, value)
        shard_paths: List[Path] = []
        for shard in self.shards:
            shard_path = trace_path.with_name(f"{trace_path.name}.{shard.name}")
            write_trace(shard.tracer, shard_path)
            shard_paths.append(shard_path)
        service_path = trace_path.with_name(f"{trace_path.name}.service")
        write_trace(service_tracer, service_path)
        merge_traces([*shard_paths, service_path], trace_path)
        return trace_path

    # -- admission ------------------------------------------------------

    def submit(
        self, request: SolveRequest, tenant: str = "default", priority: int = 0
    ) -> "asyncio.Future[ServiceRecord]":
        """Admit one request; returns the future of its terminal record.

        Raises :class:`ServiceRejected` (and records the rejection)
        when admission control refuses — the caller picks between
        retrying after :meth:`wait_for_capacity` and giving up.
        """
        if self._wake is None:
            raise RuntimeError("service not started; call start() first")
        reason: Optional[str] = None
        if self._stopping:
            reason = "service_stopped"
        elif request.request_id in self._items or request.request_id in self._records:
            reason = "duplicate_request"
        if reason is None:
            item = _Item(
                request=request,
                tenant=tenant,
                priority=priority,
                future=asyncio.get_event_loop().create_future(),
                submitted_at=time.perf_counter(),
            )
            reason = self._admission.offer(
                request.request_id, tenant=tenant, priority=priority, payload=item
            )
        if reason is not None:
            self._rejections.append(
                Rejection(request_id=request.request_id, tenant=tenant, reason=reason)
            )
            self._bump("service_requests_rejected")
            raise ServiceRejected(reason, request.request_id)
        self._items[request.request_id] = item
        self._order.append(request.request_id)
        self._bump("service_requests_admitted")
        if not self._admission.has_space:
            self._space.clear()
        self._wake.set()
        return item.future

    async def wait_for_capacity(self) -> None:
        """Backpressure seam: block until the admission queue has room."""
        while not (self._admission.has_space or self._stopping):
            self._space.clear()
            await self._space.wait()

    # -- dispatch -------------------------------------------------------

    def _bump(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def _has_work(self) -> bool:
        return bool(self._failover) or len(self._admission) > 0

    def _idle(self) -> bool:
        return not self._has_work() and not any(shard.busy for shard in self.shards)

    async def _dispatch(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            self._launch_ready_windows()
            if self._stopping and self._idle():
                return

    def _next_window(self) -> List[_Item]:
        """Failed-over requests first, then admissions by priority."""
        window: List[_Item] = []
        while self._failover and len(window) < self.batch_window:
            window.append(self._failover.popleft())
        while len(self._admission) and len(window) < self.batch_window:
            window.append(self._admission.pop().payload)
            self._space.set()
        return window

    def _launch_ready_windows(self) -> None:
        while self._has_work():
            routable = [shard for shard in self.shards if shard.healthy]
            if not routable:
                if self._lifeboat() is not None:
                    continue
                self._fail_unroutable()
                return
            idle = [shard for shard in routable if not shard.busy]
            if not idle:
                return
            window = self._next_window()
            if not window:
                return
            shard = idle[0]
            shard.busy = True
            self._bump("service_windows")
            task = asyncio.ensure_future(self._run_window(shard, window))
            self._window_tasks.add(task)
            task.add_done_callback(self._window_tasks.discard)

    def _lifeboat(self) -> Optional[Shard]:
        """Every shard is dead: launch one serial rescue shard (once)."""
        if any(shard.status == "lifeboat" for shard in self.shards):
            return None  # the lifeboat itself died; no second boat
        self._bump("service_lifeboats_launched")
        lifeboat = Shard(
            name="lifeboat",
            seed=self.seed,
            workers=1,
            queue_limit=max(self.batch_window, 1),
            retry=self.retry,
            faults=self.faults,
            degradation=self.degradation,
            ladder_kwargs=self.ladder_kwargs,
            journal_path=(
                self.journal_dir / "lifeboat.journal"
                if self.journal_dir is not None
                else None
            ),
            status="lifeboat",
            fleet=self.fleet,
            certify=self.certify,
        )
        self.shards.append(lifeboat)
        return lifeboat

    def _fail_unroutable(self) -> None:
        """No shard left at all: terminal structured failures, not limbo."""
        while self._has_work():
            for item in self._next_window():
                self._resolve(
                    item,
                    SolveOutcome(
                        request_id=item.request.request_id,
                        status="failed",
                        error="no healthy shards",
                        attempt_history=["failed"],
                    ),
                    shard_name="-",
                )

    async def _run_window(self, shard: Shard, window: List[_Item]) -> None:
        loop = asyncio.get_event_loop()
        requests = [item.request for item in window]
        try:
            result = await loop.run_in_executor(None, shard.run_window, requests)
        except ShardDied:
            self._shard_died(shard, window)
        else:
            for item in window:
                outcome = result.outcome_for(item.request.request_id)
                if outcome is None:  # runtime contract says impossible; stay terminal
                    outcome = SolveOutcome(
                        request_id=item.request.request_id,
                        status="failed",
                        error="shard returned no outcome",
                    )
                self._resolve(item, outcome, shard_name=shard.name)
        finally:
            shard.busy = False
            self._maybe_canary_sweep()
            self._wake.set()

    def _maybe_canary_sweep(self) -> None:
        """After every ``canary_interval`` windows, probe the fleet.

        Runs on the loop thread (the fleet takes its own lock, so
        concurrent shard windows keep routing). Probe request ids are
        keyed by the sweep ordinal, so a rerun of the same workload
        probes with the same seed streams — sweeps are as deterministic
        as the traffic around them.
        """
        self._windows_completed += 1
        if self.canary_interval is None or self.fleet is None:
            return
        if self._windows_completed % self.canary_interval != 0:
            return
        from repro.certify.canary import run_canary_sweep
        from repro.certify.certificate import CertifyPolicy

        policy = CertifyPolicy.coerce(self.certify) or CertifyPolicy()
        events = run_canary_sweep(
            self.fleet, self.seed, self._canary_sweeps, policy=policy
        )
        self._canary_sweeps += 1
        self._bump("canary_sweeps")
        for name, value in events.items():
            self._bump(name, value)

    # -- terminal paths -------------------------------------------------

    def _resolve(
        self,
        item: _Item,
        outcome: SolveOutcome,
        shard_name: str,
        replayed: bool = False,
    ) -> None:
        record = ServiceRecord(
            outcome=outcome,
            tenant=item.tenant,
            priority=item.priority,
            shard=shard_name,
            failovers=item.failovers,
            replayed_from_journal=replayed,
            latency_seconds=time.perf_counter() - item.submitted_at,
        )
        self._records[item.request.request_id] = record
        self._items.pop(item.request.request_id, None)
        self._bump(
            "service_requests_completed" if outcome.ok else "service_requests_failed"
        )
        if not item.future.done():
            item.future.set_result(record)

    def _shard_died(self, shard: Shard, window: List[_Item]) -> None:
        """Journal-based fail-over for one dead shard's window.

        Outcomes the journal committed before the crash are resolved
        as replayed — their counters were already absorbed into the
        shard's tracer live, so nothing is re-applied or double
        counted. The accepted-but-uncommitted remainder goes back to
        the front of the dispatch queue with its fail-over count
        bumped.
        """
        self._bump("service_shards_lost")
        try:
            replay = shard.recover()
        except Exception:
            replay = None  # unreadable journal: replay the whole window
        for item in window:
            entry = (
                replay.replayed_outcome(item.request.request_id)
                if replay is not None
                else None
            )
            if entry is not None:
                self._bump("service_replayed_outcomes")
                self._resolve(item, entry[0], shard_name=shard.name, replayed=True)
                continue
            item.failovers += 1
            if item.failovers > self.max_failovers:
                self._resolve(
                    item,
                    SolveOutcome(
                        request_id=item.request.request_id,
                        status="failed",
                        error=f"exceeded {self.max_failovers} shard fail-overs",
                        attempt_history=["failed"],
                    ),
                    shard_name=shard.name,
                )
                continue
            self._bump("service_failovers")
            self._failover.append(item)


def serve_requests(
    requests: Sequence[SolveRequest],
    tenants: Optional[Sequence[str]] = None,
    priorities: Optional[Sequence[int]] = None,
    trace_path: Optional[Path] = None,
    **service_kwargs: Any,
) -> ServiceResult:
    """Run a fixed request list through a fresh service, synchronously.

    The blocking convenience wrapper the CLI, the bench suite, and
    most tests use: submissions apply backpressure (wait for queue
    space) instead of failing on ``queue_full``; rejections for any
    other reason are recorded in the result rather than raised.
    ``tenants`` / ``priorities`` align positionally with ``requests``.
    """
    if tenants is not None and len(tenants) != len(requests):
        raise ValueError("tenants must align with requests")
    if priorities is not None and len(priorities) != len(requests):
        raise ValueError("priorities must align with requests")

    async def _run() -> ServiceResult:
        service = SolveService(**service_kwargs)
        await service.start()
        for index, request in enumerate(requests):
            await service.wait_for_capacity()
            try:
                service.submit(
                    request,
                    tenant=tenants[index] if tenants is not None else "default",
                    priority=priorities[index] if priorities is not None else 0,
                )
            except ServiceRejected:
                pass  # recorded in result.rejections
        return await service.drain(trace_path=trace_path)

    return asyncio.run(_run())
