"""Suite-wide test configuration.

Hypothesis deadlines are disabled globally: the property tests exercise
numerical kernels whose wall-clock varies wildly with machine load
(this suite is routinely run alongside the paper-scale experiment
sweep), and a deadline flake tells us nothing about correctness.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
